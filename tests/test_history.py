"""Tests for the persistent benchmark history store."""

import json

import pytest

from repro.core.export import result_to_json
from repro.core.history import (
    HISTORY_SCHEMA,
    UNKNOWN_COMMIT,
    HistoryEntry,
    JsonlHistory,
    SqliteHistory,
    created_sort_key,
    current_commit,
    entries_from_result,
    format_created,
    manifest_hash,
    open_history,
)
from repro.core.types import (
    AggregatedRun,
    BenchmarkRun,
    InputSize,
    RunStats,
    SuiteResult,
)


def make_result(total=1.5, samples=(1.4, 1.5, 1.6), manifest=True,
                backend="fast", created="2026-08-06T00:00:00"):
    """A one-cell suite result with repeat stats and (optionally) a manifest."""
    run = BenchmarkRun(
        benchmark="demo",
        size=InputSize.QCIF,
        variant=0,
        total_seconds=total,
        kernel_seconds={"A": total / 2},
        kernel_calls={"A": 4},
    )
    if samples is not None:
        run.stats = AggregatedRun(
            benchmark="demo",
            size=InputSize.QCIF,
            variant=0,
            warmup=1,
            total=RunStats.of(list(samples)),
            kernels={"A": RunStats.of([s / 2 for s in samples])},
            kernel_calls={"A": 4},
        )
    result = SuiteResult()
    result.runs.append(run)
    if manifest:
        result.manifest = {
            "schema": "sdvbs-repro/manifest/v1",
            "created": created,
            "measurement": {"backend": backend, "repeats": len(samples or ())},
        }
    return result


class TestCurrentCommit:
    def test_inside_repo_returns_hex(self):
        commit = current_commit(cwd="/root/repo")
        assert commit != UNKNOWN_COMMIT
        assert len(commit) == 40
        int(commit, 16)  # raises if not hex

    def test_outside_repo_returns_unknown(self, tmp_path):
        assert current_commit(cwd=str(tmp_path)) == UNKNOWN_COMMIT


class TestManifestHash:
    def test_stable_across_timestamps(self):
        base = {"measurement": {"backend": "fast"}, "created": "t1"}
        later = {"measurement": {"backend": "fast"}, "created": "t2"}
        assert manifest_hash(base) == manifest_hash(later)

    def test_differs_on_configuration(self):
        fast = {"measurement": {"backend": "fast"}}
        ref = {"measurement": {"backend": "ref"}}
        assert manifest_hash(fast) != manifest_hash(ref)

    def test_absent_manifest_sentinel(self):
        assert manifest_hash(None) == manifest_hash({})
        assert len(manifest_hash(None)) == 16


class TestEntriesFromResult:
    def test_one_entry_per_populated_cell(self):
        entries = entries_from_result(make_result(), commit="abc123")
        assert len(entries) == 1
        entry = entries[0]
        assert entry.commit == "abc123"
        assert entry.benchmark == "demo"
        assert entry.size == "QCIF"
        assert entry.backend == "fast"
        assert entry.median_seconds == pytest.approx(1.5)
        assert entry.stddev is not None and entry.stddev > 0
        assert entry.repeats == 3
        assert entry.runs == 1

    def test_statless_run_has_unknown_noise(self):
        entries = entries_from_result(make_result(samples=None),
                                      commit="abc123")
        assert entries[0].stddev is None
        assert entries[0].repeats == 1

    def test_backend_from_manifest(self):
        entries = entries_from_result(make_result(backend="ref"),
                                      commit="abc123")
        assert entries[0].backend == "ref"

    def test_no_manifest_defaults(self):
        entries = entries_from_result(make_result(manifest=False),
                                      commit="abc123")
        assert entries[0].backend == "fast"
        assert entries[0].manifest_hash == manifest_hash(None)

    def test_default_commit_is_head(self):
        entries = entries_from_result(make_result())
        assert entries[0].commit == current_commit()

    def test_entry_dict_roundtrip(self):
        entry = entries_from_result(make_result(), commit="abc")[0]
        assert HistoryEntry.from_dict(entry.to_dict()) == entry


@pytest.fixture(params=["sqlite", "jsonl"])
def store(request, tmp_path):
    if request.param == "sqlite":
        with SqliteHistory(str(tmp_path / "history.sqlite")) as s:
            yield s
    else:
        yield JsonlHistory(str(tmp_path / "history.jsonl"))


class TestStoreBackends:
    def test_record_and_read_back(self, store):
        added = store.record(make_result(), commit="c1")
        assert len(added) == 1
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0] == added[0]

    def test_record_is_idempotent(self, store):
        store.record(make_result(), commit="c1")
        again = store.record(make_result(), commit="c1")
        assert again == []
        assert len(store.entries()) == 1

    def test_same_commit_new_manifest_gets_new_row(self, store):
        store.record(make_result(backend="fast"), commit="c1")
        added = store.record(make_result(backend="ref"), commit="c1")
        assert len(added) == 1
        assert len(store.entries()) == 2

    def test_filters(self, store):
        store.record(make_result(), commit="c1")
        store.record(make_result(), commit="c2")
        assert len(store.entries(commit="c1")) == 1
        assert store.entries(benchmark="demo", size="QCIF",
                             backend="fast")
        assert store.entries(benchmark="missing") == []

    def test_manifest_hash_filter(self, store):
        # Same configuration recorded under two commits shares the
        # manifest hash; a different backend changes it (the serve
        # layer's cache lookup relies on both).
        store.record(make_result(backend="fast"), commit="c1")
        store.record(make_result(backend="fast"), commit="c2")
        store.record(make_result(backend="ref"), commit="c1")
        digest = manifest_hash(make_result(backend="fast").manifest)
        matching = store.entries(manifest_hash=digest)
        assert len(matching) == 2
        assert {e.commit for e in matching} == {"c1", "c2"}
        assert store.entries(manifest_hash="0" * 16) == []

    def test_commits_in_first_recorded_order(self, store):
        store.record(make_result(), commit="c1")
        store.record(make_result(total=2.0, samples=(1.9, 2.0, 2.1)),
                     commit="c2")
        assert store.commits() == ["c1", "c2"]

    def test_latest_commit_before(self, store):
        assert store.latest_commit_before("c3") is None
        store.record(make_result(), commit="c1")
        store.record(make_result(total=2.0, samples=(1.9, 2.0, 2.1)),
                     commit="c2")
        assert store.latest_commit_before("c3") == "c2"
        assert store.latest_commit_before("c2") == "c1"
        assert store.latest_commit_before("c1") == "c2"

    def test_latest_commit_before_orders_by_measurement_time(self, store):
        """A stale export re-recorded late must not hijack the baseline.

        ``old`` is measured first, ``new`` second; recording another of
        ``old``'s exports *after* ``new`` (a second backend, say) puts
        ``old`` last in insertion order, but ``new`` remains the most
        recently measured commit and must stay the default baseline.
        """
        store.record(make_result(created="2026-08-01T00:00:00"),
                     commit="old")
        store.record(make_result(created="2026-08-05T00:00:00"),
                     commit="new")
        store.record(make_result(backend="ref",
                                 created="2026-08-01T00:00:00"),
                     commit="old")
        assert store.latest_commit_before("candidate") == "new"
        assert store.latest_commit_before("new") == "old"

    def test_bulk_ingest_scans_store_once(self, tmp_path):
        """JSONL ingest of N entries must not rescan the file N times."""

        class CountingJsonl(JsonlHistory):
            def __init__(self, path):
                super().__init__(path)
                self.scans = 0

            def _iter_entries(self):
                self.scans += 1
                return super()._iter_entries()

        result = make_result()
        for size in (InputSize.SQCIF, InputSize.CIF):
            run = BenchmarkRun(
                benchmark="demo", size=size, variant=0,
                total_seconds=1.0, kernel_seconds={"A": 0.5},
                kernel_calls={"A": 4})
            result.runs.append(run)
        counting = CountingJsonl(str(tmp_path / "h.jsonl"))
        added = counting.record(result, commit="c1")
        assert len(added) == 3
        assert counting.scans == 1
        # ... and a duplicate batch still detects everything in one scan.
        counting.scans = 0
        assert counting.record(result, commit="c1") == []
        assert counting.scans == 1

    def test_created_comes_from_manifest(self):
        entries = entries_from_result(make_result(), commit="c1")
        assert entries[0].created == "2026-08-06T00:00:00"

    def test_created_falls_back_to_now_without_manifest(self):
        entries = entries_from_result(make_result(manifest=False),
                                      commit="c1")
        assert entries[0].created.startswith("20")  # an ISO stamp, not ""


class TestCreatedStamps:
    def test_format_created_always_carries_an_offset(self):
        """The %z + time.localtime path rendered an empty offset on some
        platforms; the aware-datetime path always formats one."""
        formatted = format_created("1754300000.5")
        assert "+" in formatted or formatted.count("-") > 2

    def test_format_created_passthrough_for_non_numeric(self):
        assert format_created("2026-08-06T00:00:00") == "2026-08-06T00:00:00"
        assert format_created("garbage") == "garbage"

    def test_sort_key_accepts_all_written_formats(self):
        epoch = created_sort_key("1754300000.5")
        assert epoch == pytest.approx(1754300000.5)
        # strftime("%z") offsets ("+0000", no colon) and fromisoformat
        # offsets ("+00:00") must order identically.
        legacy = created_sort_key("2026-08-06T00:00:00+0000")
        modern = created_sort_key("2026-08-06T00:00:00+00:00")
        assert legacy == modern > 0
        assert created_sort_key("2026-08-07T00:00:00+0000") > legacy

    def test_sort_key_unparseable_sorts_oldest(self):
        assert created_sort_key("garbage") == 0.0


class TestJsonlFormat:
    def test_lines_carry_schema(self, tmp_path):
        path = tmp_path / "h.jsonl"
        JsonlHistory(str(path)).record(make_result(), commit="c1")
        payload = json.loads(path.read_text().splitlines()[0])
        assert payload["schema"] == HISTORY_SCHEMA

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        store = JsonlHistory(str(path))
        store.record(make_result(), commit="c1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"schema": "x", "truncated": true}\n')
        assert len(store.entries()) == 1
        # and ingest still works after the corruption
        store.record(make_result(), commit="c2")
        assert len(store.entries()) == 2


class TestOpenHistory:
    def test_jsonl_suffix_selects_jsonl(self, tmp_path):
        store = open_history(str(tmp_path / "h.jsonl"))
        assert isinstance(store, JsonlHistory)

    def test_default_is_sqlite(self, tmp_path):
        with open_history(str(tmp_path / "h.sqlite")) as store:
            assert isinstance(store, SqliteHistory)


class TestCliHistory:
    def _export(self, tmp_path, result=None):
        path = tmp_path / "result.json"
        path.write_text(result_to_json(result or make_result()))
        return str(path)

    def test_record_list_show_roundtrip(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        export = self._export(tmp_path)
        db = str(tmp_path / "history.sqlite")
        assert cli_main(["history", "record", export, "--db", db,
                         "--commit", "feedc0de" * 5]) == 0
        out = capsys.readouterr().out
        assert "recorded 1 new cell(s)" in out

        assert cli_main(["history", "list", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "feedc0de" in out
        assert "demo" in out

        assert cli_main(["history", "show", "feedc0de", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "QCIF" in out

    def test_record_twice_adds_nothing(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        export = self._export(tmp_path)
        db = str(tmp_path / "history.sqlite")
        cli_main(["history", "record", export, "--db", db, "--commit", "c1"])
        capsys.readouterr()
        assert cli_main(["history", "record", export, "--db", db,
                         "--commit", "c1"]) == 0
        assert "recorded 0 new cell(s)" in capsys.readouterr().out

    def test_show_unknown_prefix_fails(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        export = self._export(tmp_path)
        db = str(tmp_path / "history.sqlite")
        cli_main(["history", "record", export, "--db", db, "--commit", "c1"])
        capsys.readouterr()
        assert cli_main(["history", "show", "nope", "--db", db]) == 2

    def test_list_empty_store(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "empty.sqlite")
        assert cli_main(["history", "list", "--db", db]) == 0
        assert "empty" in capsys.readouterr().out

    def test_record_missing_file_fails(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "history.sqlite")
        missing = str(tmp_path / "nope.json")
        assert cli_main(["history", "record", missing, "--db", db]) == 2
