"""Tests for SMO, recursive ncuts, multi-stitch and face evaluation."""

import numpy as np
import pytest

from repro.core import InputSize
from repro.core.inputs import (
    _checker,
    _smooth,
    face_scene,
    segmentation_image,
    svm_dataset,
)
from repro.face import (
    Detection,
    evaluate_detector,
    match_detections,
    operating_curve,
    shift_thresholds,
    trained_cascade,
)
from repro.face.evaluate import EvaluationResult
from repro.segmentation import label_purity, ncut_value, segment_recursive
from repro.segmentation.graph import build_affinity
from repro.stitch import AffineModel, compose, stitch_strip, strip_views
from repro.svm import (
    gram_matrix,
    linear_kernel,
    solve_svm_dual,
    solve_svm_dual_smo,
)


class TestSmo:
    def _problem(self, seed=0, n=40):
        data = svm_dataset(InputSize.SQCIF, seed % 5, dim=8)
        x = data.train_x[:n]
        y = data.train_y[:n]
        if len(np.unique(y)) < 2:  # pragma: no cover - extremely unlikely
            y[0] = -y[0]
        return gram_matrix(linear_kernel(), x), y

    def test_constraints_hold(self):
        gram, y = self._problem()
        result = solve_svm_dual_smo(gram, y, c=1.0)
        assert (result.alpha >= -1e-9).all()
        assert (result.alpha <= 1.0 + 1e-9).all()
        assert abs(y @ result.alpha) < 1e-6

    def test_matches_interior_point_objective(self):
        gram, y = self._problem(seed=1)
        q = gram * np.outer(y, y)

        def objective(a):
            return 0.5 * a @ q @ a - a.sum()

        ipm = solve_svm_dual(q, y, c=1.0)
        smo = solve_svm_dual_smo(gram, y, c=1.0, seed=3)
        assert objective(smo.alpha) == pytest.approx(
            objective(ipm.alpha), abs=0.05
        )

    def test_objective_decreases(self):
        gram, y = self._problem(seed=2)
        result = solve_svm_dual_smo(gram, y, c=1.0)
        trace = result.objective_trace
        assert trace[-1] < trace[0]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            solve_svm_dual_smo(np.eye(3), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            solve_svm_dual_smo(np.eye(2), np.array([1.0, -1.0]), c=0.0)
        with pytest.raises(ValueError):
            solve_svm_dual_smo(np.eye(2), np.array([1.0, 2.0]))


class TestRecursiveNcuts:
    def test_recovers_regions(self):
        image, truth = segmentation_image(InputSize.SQCIF, 0, n_regions=4)
        result = segment_recursive(image, n_segments=4)
        assert label_purity(result.labels, truth) > 0.8
        assert len(result.cut_values) <= 3

    def test_labels_count(self):
        image, _ = segmentation_image(InputSize.SQCIF, 1, n_regions=3)
        result = segment_recursive(image, n_segments=3)
        assert len(np.unique(result.labels)) <= 3

    def test_ncut_value_properties(self):
        image, _ = segmentation_image(InputSize.SQCIF, 0)
        affinity = build_affinity(image[:16, :16], radius=2)
        # A balanced boundary-respecting mask has lower ncut than a
        # random one.
        half_mask = np.zeros((16, 16), dtype=bool)
        half_mask[:, :8] = True
        random_mask = np.random.default_rng(0).random((16, 16)) > 0.5
        assert ncut_value(affinity, half_mask) < \
            ncut_value(affinity, random_mask)

    def test_degenerate_mask_infinite(self):
        image, _ = segmentation_image(InputSize.SQCIF, 0)
        affinity = build_affinity(image[:8, :8], radius=1)
        assert ncut_value(affinity, np.zeros(64, dtype=bool)) == \
            float("inf")

    def test_needs_two_segments(self):
        with pytest.raises(ValueError):
            segment_recursive(np.ones((16, 16)), n_segments=1)


def _strip_canvas(seed=0, shape=(110, 360)):
    rng = np.random.default_rng(seed)
    canvas = _smooth(rng, shape, octaves=4) * 0.7
    canvas += 0.3 * _checker(shape, 9, (0, 0))
    for _ in range(40):
        cy = int(rng.integers(4, shape[0] - 4))
        cx = int(rng.integers(4, shape[1] - 4))
        canvas[cy - 2 : cy + 3, cx - 2 : cx + 3] = rng.random()
    return canvas


class TestMultiStitch:
    def test_compose_order(self):
        f = AffineModel(matrix=2.0 * np.eye(2), translation=np.array([1.0, 0.0]))
        g = AffineModel(matrix=np.eye(2), translation=np.array([0.0, 5.0]))
        point = np.array([[1.0, 1.0]])
        composed = compose(g, f)
        assert np.allclose(composed.apply(point), g.apply(f.apply(point)))

    def test_strip_views_overlap(self):
        canvas = _strip_canvas()
        views = strip_views(canvas, 3, (96, 128), (0, 64))
        assert len(views) == 3
        assert np.array_equal(views[0][:, 64:], views[1][:, :64])

    def test_strip_views_bounds(self):
        with pytest.raises(ValueError):
            strip_views(np.ones((50, 100)), 3, (96, 128), (0, 64))

    def test_chain_recovers_translations(self):
        canvas = _strip_canvas(seed=1)
        views = strip_views(canvas, 4, (96, 128), (0, 72))
        panorama = stitch_strip(views, seed=0)
        for index, transform in enumerate(panorama.transforms):
            expected = np.array([0.0, -72.0 * index])
            assert np.allclose(transform.translation, expected, atol=1.0)
            assert np.allclose(transform.matrix, np.eye(2), atol=0.05)

    def test_canvas_spans_strip(self):
        canvas = _strip_canvas(seed=2)
        views = strip_views(canvas, 3, (96, 128), (0, 80))
        panorama = stitch_strip(views, seed=0)
        assert panorama.image.shape[1] >= 128 + 2 * 80 - 4
        assert panorama.coverage > 0.9

    def test_needs_two_images(self):
        with pytest.raises(ValueError):
            stitch_strip([np.ones((32, 32))])


class TestFaceEvaluation:
    def test_match_detections_counts(self):
        truth = [(10, 10, 16), (50, 50, 16)]
        detections = [
            Detection(11, 11, 16, score=2.0),  # matches first
            Detection(80, 80, 16, score=1.0),  # false positive
        ]
        tp, fp, fn = match_detections(detections, truth)
        assert (tp, fp, fn) == (1, 1, 1)

    def test_one_to_one_matching(self):
        truth = [(10, 10, 16)]
        detections = [
            Detection(10, 10, 16, score=2.0),
            Detection(11, 11, 16, score=1.0),  # duplicate -> FP
        ]
        tp, fp, fn = match_detections(detections, truth)
        assert (tp, fp, fn) == (1, 1, 0)

    def test_metrics_definitions(self):
        result = EvaluationResult(true_positives=3, false_positives=1,
                                  false_negatives=1)
        assert result.precision == pytest.approx(0.75)
        assert result.recall == pytest.approx(0.75)
        assert result.f1 == pytest.approx(0.75)

    def test_empty_edge_cases(self):
        perfect = EvaluationResult(0, 0, 0)
        assert perfect.precision == 1.0
        assert perfect.recall == 1.0

    def test_detector_quality_on_scenes(self):
        cascade = trained_cascade(0)
        scenes = [
            (scene.image, scene.true_boxes)
            for scene in (face_scene(InputSize.SQCIF, v) for v in range(2))
        ]
        result = evaluate_detector(cascade, scenes)
        assert result.recall >= 0.75
        assert result.precision >= 0.5

    def test_threshold_shift_monotone(self):
        cascade = trained_cascade(0)
        scene = face_scene(InputSize.SQCIF, 0)
        curve = operating_curve(
            cascade, [(scene.image, scene.true_boxes)],
            offsets=(-1.0, 0.0, 5.0),
        )
        totals = [
            ev.true_positives + ev.false_positives for _off, ev in curve
        ]
        # Stricter thresholds never yield more detections.
        assert totals[0] >= totals[1] >= totals[2]

    def test_shift_preserves_structure(self):
        cascade = trained_cascade(0)
        shifted = shift_thresholds(cascade, 0.5)
        assert len(shifted.stages) == len(cascade.stages)
        for original, moved in zip(cascade.stages, shifted.stages):
            assert moved.stage_threshold == pytest.approx(
                original.stage_threshold + 0.5
            )
