"""Unit and property tests for the clean matrix-operation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg.matrix import (
    SingularMatrixError,
    determinant,
    identity,
    inverse,
    inverse_2x2,
    lu_decompose,
    matmul,
    solve,
    transpose,
)

square = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 6).map(lambda n: (n, n)),
    elements=st.floats(-5, 5, allow_nan=False),
)


def well_conditioned(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a + n * np.eye(n)  # diagonally dominant


class TestBasics:
    def test_matmul_shapes(self):
        a = np.ones((2, 3))
        b = np.ones((3, 4))
        assert matmul(a, b).shape == (2, 4)

    def test_matmul_mismatch(self):
        with pytest.raises(ValueError):
            matmul(np.ones((2, 3)), np.ones((2, 3)))

    def test_transpose_copies(self):
        a = np.random.default_rng(0).random((3, 4))
        t = transpose(a)
        assert np.array_equal(t, a.T)
        t[0, 0] = 99.0
        assert a[0, 0] != 99.0

    def test_identity(self):
        assert np.array_equal(identity(3), np.eye(3))

    def test_identity_negative(self):
        with pytest.raises(ValueError):
            identity(-1)


class TestSolve:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_solves_exactly(self, n):
        a = well_conditioned(n, n)
        x_true = np.arange(1.0, n + 1.0)
        x = solve(a, a @ x_true)
        assert np.allclose(x, x_true, atol=1e-9)

    def test_matrix_rhs(self):
        a = well_conditioned(4, 1)
        b = np.random.default_rng(2).random((4, 3))
        x = solve(a, b)
        assert np.allclose(a @ x, b, atol=1e-9)

    def test_singular_raises(self):
        a = np.ones((3, 3))
        with pytest.raises(SingularMatrixError):
            solve(a, np.ones(3))

    def test_needs_square(self):
        with pytest.raises(ValueError):
            solve(np.ones((2, 3)), np.ones(2))

    def test_rhs_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve(np.eye(3), np.ones(4))

    def test_requires_pivoting(self):
        # Zero top-left pivot; only partial pivoting can solve this.
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = solve(a, np.array([2.0, 3.0]))
        assert np.allclose(x, [3.0, 2.0])


class TestInverse:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_left_and_right_inverse(self, n):
        a = well_conditioned(n, n + 10)
        ainv = inverse(a)
        assert np.allclose(a @ ainv, np.eye(n), atol=1e-8)
        assert np.allclose(ainv @ a, np.eye(n), atol=1e-8)

    def test_inverse_2x2_closed_form(self):
        a = np.array([[4.0, 7.0], [2.0, 6.0]])
        assert np.allclose(inverse_2x2(a) @ a, np.eye(2), atol=1e-12)

    def test_inverse_2x2_singular(self):
        with pytest.raises(SingularMatrixError):
            inverse_2x2(np.array([[1.0, 2.0], [2.0, 4.0]]))

    def test_inverse_2x2_wrong_shape(self):
        with pytest.raises(ValueError):
            inverse_2x2(np.eye(3))

    def test_matches_general_inverse(self):
        a = well_conditioned(2, 3)
        assert np.allclose(inverse_2x2(a), inverse(a), atol=1e-10)


class TestDeterminant:
    def test_known_value(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert determinant(a) == pytest.approx(-2.0)

    def test_singular_zero(self):
        assert determinant(np.ones((3, 3))) == 0.0

    def test_identity_one(self):
        assert determinant(np.eye(5)) == pytest.approx(1.0)

    @settings(max_examples=25)
    @given(st.integers(1, 5), st.integers(0, 100))
    def test_matches_numpy(self, n, seed):
        a = np.random.default_rng(seed).standard_normal((n, n))
        assert determinant(a) == pytest.approx(
            float(np.linalg.det(a)), rel=1e-6, abs=1e-9
        )

    def test_product_rule(self):
        a = well_conditioned(3, 5)
        b = well_conditioned(3, 6)
        assert determinant(a @ b) == pytest.approx(
            determinant(a) * determinant(b), rel=1e-8
        )


class TestLU:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_factorization(self, n):
        a = well_conditioned(n, n + 20)
        p, l, u = lu_decompose(a)
        assert np.allclose(p @ a, l @ u, atol=1e-9)
        assert np.allclose(np.diag(l), 1.0)
        assert np.allclose(np.tril(u, -1), 0.0)

    def test_permutation_is_orthogonal(self):
        a = well_conditioned(4, 30)
        p, _l, _u = lu_decompose(a)
        assert np.allclose(p @ p.T, np.eye(4))

    def test_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            lu_decompose(np.zeros((3, 3)))
