"""Dual-backend registry, dispatch, scoping, and manifest recording."""

import json

import numpy as np
import pytest

from repro.core import backend as backend_mod
from repro.core.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    active_backend,
    get_kernel,
    load_all_kernels,
    register_kernel,
    register_ref_only,
    registered_kernels,
    set_backend,
    use_backend,
)
from repro.core.runner import run_benchmark
from repro.core.registry import get_benchmark
from repro.core.tracing import run_manifest
from repro.core.types import InputSize


@pytest.fixture
def scratch_kernel():
    """Allow a test to register a throwaway kernel; clean up afterwards."""
    created = []

    def track(name):
        created.append(name)
        return name

    yield track
    for name in created:
        backend_mod._registry.pop(name, None)


@pytest.fixture(autouse=True)
def restore_backend():
    previous = active_backend()
    yield
    set_backend(previous)


class TestRegistry:
    def test_load_all_kernels_populates_catalog(self):
        load_all_kernels()
        names = [spec.name for spec in registered_kernels()]
        assert names == sorted(names)
        expected = {
            "disparity.ssd",
            "imgproc.bilinear",
            "imgproc.convolve2d",
            "imgproc.convolve_cols",
            "imgproc.convolve_rows",
            "imgproc.gradient",
            "imgproc.integral_image",
            "imgproc.warp_affine",
            "sift.descriptor",
            "stitch.match_distances",
            "svm.kernel_matrix",
            "tracking.min_eigenvalue",
        }
        assert expected <= set(names)

    def test_specs_carry_catalog_metadata(self):
        for spec in registered_kernels():
            assert spec.paper_kernel
            assert spec.apps
            assert spec.module.startswith("repro.")
            assert spec.doc
            assert spec.backends() in (BACKENDS, ("ref",))

    def test_get_kernel_unknown_name(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("no.such.kernel")

    def test_duplicate_registration_rejected(self, scratch_kernel):
        name = scratch_kernel("test.duplicate")
        register_kernel(name, paper_kernel="X", apps=("disparity",),
                        ref=lambda: "ref")(lambda: "fast")
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(name, paper_kernel="X", apps=("disparity",),
                            ref=lambda: "ref")(lambda: "fast")


class TestDispatch:
    def test_dispatcher_follows_active_backend(self, scratch_kernel):
        name = scratch_kernel("test.dispatch")
        dispatcher = register_kernel(
            name, paper_kernel="X", apps=("disparity",),
            ref=lambda: "ref-result",
        )(lambda: "fast-result")
        assert dispatcher() == "fast-result"  # default backend
        with use_backend("ref"):
            assert dispatcher() == "ref-result"
        assert dispatcher() == "fast-result"
        assert dispatcher.kernel_spec.name == name

    def test_ref_only_kernel_falls_back_under_fast(self, scratch_kernel):
        name = scratch_kernel("test.ref_only")
        dispatcher = register_ref_only(
            name, paper_kernel="X", apps=("disparity",),
        )(lambda: "ref-result")
        with use_backend("fast"):
            assert dispatcher() == "ref-result"
        spec = dispatcher.kernel_spec
        assert spec.backends() == ("ref",)
        assert spec.implementation("fast") is spec.ref

    def test_real_kernel_dispatches_both_paths(self):
        from repro.imgproc.integral import integral_image

        img = np.arange(20.0).reshape(4, 5)
        fast_out = integral_image(img)
        with use_backend("ref"):
            ref_out = integral_image(img)
        np.testing.assert_array_equal(fast_out, ref_out)


class TestBackendState:
    def test_default_is_fast(self):
        assert DEFAULT_BACKEND == "fast"
        assert active_backend() in BACKENDS

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("turbo")

    def test_use_backend_restores_on_exit(self):
        set_backend("fast")
        with use_backend("ref"):
            assert active_backend() == "ref"
        assert active_backend() == "fast"

    def test_use_backend_none_is_noop(self):
        set_backend("ref")
        with use_backend(None):
            assert active_backend() == "ref"
        assert active_backend() == "ref"

    def test_use_backend_restores_after_exception(self):
        set_backend("fast")
        with pytest.raises(RuntimeError):
            with use_backend("ref"):
                raise RuntimeError("boom")
        assert active_backend() == "fast"


class TestRunnerIntegration:
    def test_run_benchmark_backend_scope_restores(self):
        bench = get_benchmark("disparity")
        set_backend("fast")
        run = run_benchmark(bench, InputSize.SQCIF, backend="ref")
        assert active_backend() == "fast"
        assert run.total_seconds > 0.0

    def test_ref_and_fast_runs_agree_on_outputs(self):
        bench = get_benchmark("disparity")
        fast_run = run_benchmark(bench, InputSize.SQCIF, backend="fast")
        ref_run = run_benchmark(bench, InputSize.SQCIF, backend="ref")
        assert set(ref_run.outputs) == set(fast_run.outputs)
        np.testing.assert_allclose(
            ref_run.outputs["mean_abs_error"],
            fast_run.outputs["mean_abs_error"],
            rtol=1e-9, atol=1e-9,
        )


class TestManifest:
    def test_manifest_records_active_backend(self):
        manifest = run_manifest(argv=["run"])
        assert manifest["measurement"]["backend"] == active_backend()

    def test_manifest_records_explicit_backend(self):
        manifest = run_manifest(argv=["run"], backend="ref")
        assert manifest["measurement"]["backend"] == "ref"

    def test_manifest_reflects_scoped_backend(self):
        with use_backend("ref"):
            manifest = run_manifest(argv=["run"])
        assert manifest["measurement"]["backend"] == "ref"


class TestCli:
    def test_run_json_records_backend(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["run", "disparity", "--sizes", "sqcif",
                         "--backend", "ref", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["measurement"]["backend"] == "ref"

    def test_run_json_default_backend(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["run", "disparity", "--sizes", "sqcif",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["measurement"]["backend"] == "fast"

    def test_run_rejects_unknown_backend(self, capsys):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["run", "disparity", "--backend", "turbo"])
        assert "invalid choice" in capsys.readouterr().err

    def test_verify_backends_subset(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["verify-backends", "--sizes", "sqcif",
                         "--kernels", "imgproc.integral_image"]) == 0
        out = capsys.readouterr().out
        assert "imgproc.integral_image" in out
        assert "all within tolerance" in out

    def test_verify_backends_unknown_kernel(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["verify-backends", "--kernels", "no.such"]) == 2
        assert "unknown kernels" in capsys.readouterr().err

    def test_help_documents_backend_flag(self, capsys):
        from repro.cli import main as cli_main

        for command in ("run", "figure2", "figure3", "trace"):
            with pytest.raises(SystemExit):
                cli_main([command, "--help"])
            assert "--backend" in capsys.readouterr().out
