"""Tests for the dynamic dataflow tracer, cross-validating Table IV models.

The analytic cost models in each application's ``parallelism_models``
assert critical-path shapes; here the *actual* kernel computations run on
traced values and the measured work/span must agree with the analytic
combinators on matching instance shapes.
"""

import math

import numpy as np
import pytest

from repro.core.dataflow import Chain, Op, ParMap, Reduce, Seq
from repro.core.trace import (
    TracedValue,
    Tracer,
    traced_convolution_row,
    traced_integral_reassociated,
    traced_integral_serial,
    traced_ssd,
    traced_winner_take_all,
    tree_reduce,
    tree_sum,
)


class TestTracedArithmetic:
    def test_values_compute_correctly(self):
        tracer = Tracer()
        a = tracer.constant(3.0)
        b = tracer.constant(4.0)
        c = (a + b) * 2.0 - 1.0
        assert float(c) == pytest.approx(13.0)

    def test_work_counts_operations(self):
        tracer = Tracer()
        a = tracer.constant(1.0)
        b = tracer.constant(2.0)
        _ = a + b  # 1 op
        _ = a * b  # 1 op
        assert tracer.work == 2

    def test_span_follows_dependences(self):
        tracer = Tracer()
        a = tracer.constant(1.0)
        chain = a
        for _ in range(5):
            chain = chain + 1.0  # serial chain of 5 ops
        assert tracer.span == 5

    def test_independent_ops_share_span(self):
        tracer = Tracer()
        values = tracer.constants([1.0, 2.0, 3.0, 4.0])
        for v in values:
            _ = v * 2.0
        assert tracer.work == 4
        assert tracer.span == 1
        assert tracer.parallelism == pytest.approx(4.0)

    def test_division_and_negation(self):
        tracer = Tracer()
        a = tracer.constant(8.0)
        assert float(a / 2.0) == 4.0
        assert float(2.0 / a) == 0.25
        assert float(-a) == -8.0
        assert float(1.0 - a) == -7.0

    def test_min_max(self):
        tracer = Tracer()
        a = tracer.constant(3.0)
        assert float(a.minimum(1.0)) == 1.0
        assert float(a.maximum(9.0)) == 9.0

    def test_cross_tracer_rejected(self):
        a = Tracer().constant(1.0)
        b = Tracer().constant(2.0)
        with pytest.raises(ValueError):
            _ = a + b


class TestTracerDeterminism:
    def test_node_ids_are_per_tracer(self):
        """Fresh tracers start numbering at 0, whatever traced earlier."""
        first = Tracer()
        first.constants([1.0, 2.0, 3.0])  # pollute the "process"
        fresh = Tracer()
        leaf = fresh.constant(5.0)
        assert leaf.node == 0
        assert (leaf + 1.0).node == 2  # leaf, coerced constant, then the add

    def test_identical_traces_produce_identical_graphs(self):
        """Repeated limit-study traces are comparable node-for-node."""
        def trace_once():
            tracer = Tracer()
            values = tracer.constants([1.0, 2.0, 3.0, 4.0])
            tree_sum(values)
            return tracer

        one, two = trace_once(), trace_once()
        assert one.work == two.work
        assert one.span == two.span
        assert len(one.graph) == len(two.graph)
        # Same ids in both graphs: 0..n-1, regardless of trace order.
        assert all(node in two.graph for node in range(len(one.graph)))


class TestTreeReduce:
    def test_sum_correct(self):
        tracer = Tracer()
        values = tracer.constants(list(range(1, 9)))
        total = tree_sum(values)
        assert float(total) == 36.0

    def test_log_depth(self):
        tracer = Tracer()
        values = tracer.constants([1.0] * 16)
        tree_sum(values)
        assert tracer.span == 4  # log2(16)
        assert tracer.work == 15

    def test_matches_reduce_model(self):
        for n in (2, 5, 8, 13, 32):
            tracer = Tracer()
            tree_sum(tracer.constants([1.0] * n))
            model = Reduce(n)
            assert tracer.work == model.work
            assert tracer.span <= model.span  # ceil-log bound

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_reduce([], lambda a, b: a)

    def test_single_value_zero_ops(self):
        tracer = Tracer()
        v = tracer.constant(5.0)
        assert tree_sum([v]) is v
        assert tracer.work == 0


class TestTracedKernelsMatchModels:
    """Empirical work/span of real kernel bodies vs. the analytic models
    published for Table IV, on identical small shapes."""

    def test_ssd_matches_parmap_model(self):
        rng = np.random.default_rng(0)
        left = rng.random((6, 8)).tolist()
        right = rng.random((6, 8)).tolist()
        tracer = Tracer()
        out = traced_ssd(tracer, left, right)
        # Model: every pixel independent, 2 dependent ops (sub, square).
        model = ParMap(48, Op(2))
        assert tracer.work == model.work
        assert tracer.span == model.span
        # And it computes the right thing.
        expected = (np.array(left) - np.array(right)) ** 2
        got = np.array([[float(v) for v in row] for row in out])
        assert np.allclose(got, expected)

    def test_serial_integral_matches_chain_model(self):
        rng = np.random.default_rng(1)
        image = rng.random((5, 7)).tolist()
        tracer = Tracer()
        cells = traced_integral_serial(tracer, image)
        rows, cols = 5, 7
        # Model: serial prefix per row (parallel across rows), then
        # serial prefix per column (parallel across columns).
        model = Seq(
            ParMap(rows, Chain(cols - 1, Op(1))),
            ParMap(cols, Chain(rows - 1, Op(1))),
        )
        assert tracer.work == model.work
        assert tracer.span == model.span
        expected = np.asarray(image).cumsum(axis=1).cumsum(axis=0)
        got = np.array([[float(v) for v in row] for row in cells])
        assert np.allclose(got, expected)

    def test_reassociation_shrinks_span(self):
        """The paper's key observation: the same integral-image values,
        computed on an ideal dataflow machine, have log-depth span."""
        rng = np.random.default_rng(2)
        image = rng.random((8, 8)).tolist()
        serial = Tracer()
        traced_integral_serial(serial, image)
        ideal = Tracer()
        out = traced_integral_reassociated(ideal, image)
        assert ideal.span < serial.span
        assert ideal.span <= 2 * math.ceil(math.log2(8)) + 1
        expected = np.asarray(image).cumsum(axis=1).cumsum(axis=0)
        got = np.array([[float(v) for v in row] for row in out])
        assert np.allclose(got, expected)

    def test_convolution_row_span_is_log_taps_plus_mul(self):
        rng = np.random.default_rng(3)
        signal = rng.random(20).tolist()
        taps = [0.25, 0.5, 0.25]
        tracer = Tracer()
        out = traced_convolution_row(tracer, signal, taps)
        # Span: one multiply + ceil(log2 3) = 2 adds.
        assert tracer.span == 3
        # Every output pixel independent: parallelism ~ number of outputs.
        assert tracer.parallelism > len(out) / 2
        expected = np.convolve(signal, taps[::-1], mode="valid")
        assert np.allclose([float(v) for v in out], expected)

    def test_winner_take_all_matches_chain_model(self):
        rng = np.random.default_rng(4)
        costs = rng.random((6, 10)).tolist()
        tracer = Tracer()
        best = traced_winner_take_all(tracer, costs)
        model = ParMap(10, Chain(5, Op(1)))
        assert tracer.work == model.work
        assert tracer.span == model.span
        assert np.allclose(
            [float(v) for v in best], np.asarray(costs).min(axis=0)
        )

    def test_empirical_parallelism_ordering_matches_table4(self):
        """On equal-size instances, the traced kernels reproduce the
        disparity row ordering: SSD (parallel) >> winner-take-all with
        its shift-carried chain >> serial integral image."""
        rng = np.random.default_rng(5)
        image = rng.random((8, 8)).tolist()
        ssd_tracer = Tracer()
        traced_ssd(ssd_tracer, image, image)
        # Winner-take-all over few shifts and many pixels (the real
        # disparity shape: pixels >> shifts).
        wta_tracer = Tracer()
        traced_winner_take_all(wta_tracer, rng.random((4, 16)).tolist())
        integral_tracer = Tracer()
        traced_integral_serial(integral_tracer, image)
        assert ssd_tracer.parallelism > wta_tracer.parallelism
        assert wta_tracer.parallelism > integral_tracer.parallelism
