"""Tests for occupancy mapping, dense optical flow and result comparison."""

import numpy as np
import pytest

from repro.core import InputSize
from repro.core.compare import (
    SpeedupEntry,
    geometric_mean_speedup,
    hotspot_shift_report,
    occupancy_drift,
    render_comparison,
    speedups,
)
from repro.core.inputs import robot_world, sequence
from repro.core.types import BenchmarkRun, SuiteResult
from repro.localization.mapping import (
    OccupancyGridMapper,
    map_from_trace,
    map_quality,
)
from repro.tracking.dense_flow import dense_flow, iterative_dense_flow


class TestOccupancyMapping:
    def test_map_from_known_poses(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=40)
        mapper = map_from_trace(world)
        recall, precision = map_quality(mapper, world.grid)
        assert mapper.known_fraction() > 0.3
        assert precision > 0.9  # free-space estimates are trustworthy
        assert recall > 0.5  # observed walls mostly recovered

    def test_single_scan_marks_ray(self):
        mapper = OccupancyGridMapper(shape=(20, 20), max_range=20.0,
                                     n_beams=8)
        ranges = np.full(8, 5.0)
        mapper.integrate_scan((10.0, 10.0, 0.0), ranges)
        probability = mapper.occupancy_probability()
        # Cells along the +x ray should look free, the endpoint occupied.
        assert probability[10, 12] < 0.5
        assert probability[10, 15] > 0.5

    def test_maxed_beams_add_no_walls(self):
        mapper = OccupancyGridMapper(shape=(16, 16), max_range=10.0,
                                     n_beams=8)
        mapper.integrate_scan((8.0, 8.0, 0.0), np.full(8, 10.0))
        assert mapper.binary_map().sum() == 0
        assert mapper.known_fraction() > 0.0

    def test_log_odds_clamped(self):
        mapper = OccupancyGridMapper(shape=(12, 12), max_range=12.0,
                                     n_beams=8, clamp=2.0)
        for _ in range(50):
            mapper.integrate_scan((6.0, 6.0, 0.0), np.full(8, 3.0))
        assert np.abs(mapper.log_odds).max() <= 2.0

    def test_scan_shape_checked(self):
        mapper = OccupancyGridMapper(shape=(12, 12), max_range=12.0,
                                     n_beams=8)
        with pytest.raises(ValueError):
            mapper.integrate_scan((6.0, 6.0, 0.0), np.ones(5))


class TestDenseFlow:
    def test_recovers_subpixel_shift(self):
        # One-shot LK linearizes the brightness constancy equation, so it
        # is exact only for small (sub-pixel) motion: synthesize a true
        # 0.4-pixel shift by bilinear resampling.
        rng = np.random.default_rng(0)
        from repro.imgproc.filters import gaussian_blur
        from repro.imgproc.interpolate import bilinear

        canvas = gaussian_blur(rng.random((80, 100)), 2.0)
        rows, cols = 64, 84
        rr, cc = np.mgrid[2 : 2 + rows, 2 : 2 + cols].astype(np.float64)
        prev = bilinear(canvas, rr, cc)
        nxt = bilinear(canvas, rr + 0.4, cc + 0.4)
        # A feature at p in prev appears at p - 0.4 in next.
        field = dense_flow(prev, nxt)
        assert field.valid.mean() > 0.3
        dy, dx = field.median_motion()
        assert dy == pytest.approx(-0.4, abs=0.15)
        assert dx == pytest.approx(-0.4, abs=0.15)

    def test_zero_motion(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=2)
        field = dense_flow(seq.frames[0], seq.frames[0])
        dy, dx = field.median_motion()
        assert abs(dy) < 0.05 and abs(dx) < 0.05

    def test_iterative_handles_multi_pixel_motion(self):
        seq = sequence(InputSize.SQCIF, 1, n_frames=2)
        field = iterative_dense_flow(seq.frames[0], seq.frames[1],
                                     iterations=4)
        dy, dx = field.median_motion()
        true_dy, true_dx = seq.true_motion
        assert dy == pytest.approx(true_dy, abs=0.5)
        assert dx == pytest.approx(true_dx, abs=0.5)

    def test_flat_frames_all_invalid(self):
        flat = np.full((32, 32), 0.5)
        field = dense_flow(flat, flat)
        assert not field.valid.any()
        with pytest.raises(ValueError):
            field.median_motion()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dense_flow(np.ones((8, 8)), np.ones((8, 9)))


def make_result(slug, times, kernels=None):
    result = SuiteResult()
    for size, t in zip(InputSize, times):
        result.runs.append(
            BenchmarkRun(
                benchmark=slug, size=size, variant=0, total_seconds=t,
                kernel_seconds=kernels or {"K": t / 2},
            )
        )
    return result


class TestComparison:
    def test_speedups(self):
        base = make_result("demo", [2.0, 4.0, 8.0])
        cand = make_result("demo", [1.0, 2.0, 4.0])
        entries = speedups(base, cand)
        assert len(entries) == 3
        assert all(e.speedup == pytest.approx(2.0) for e in entries)

    def test_geometric_mean(self):
        entries = [
            SpeedupEntry("a", InputSize.SQCIF, 4.0, 1.0),  # 4x
            SpeedupEntry("b", InputSize.SQCIF, 1.0, 1.0),  # 1x
        ]
        assert geometric_mean_speedup(entries) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        with pytest.raises(ValueError):
            geometric_mean_speedup([])

    def test_disjoint_results(self):
        base = make_result("a", [1.0, 1.0, 1.0])
        cand = make_result("b", [1.0, 1.0, 1.0])
        assert speedups(base, cand) == []
        assert render_comparison(base, cand) == "no comparable runs"

    def test_render_includes_geomean(self):
        base = make_result("demo", [2.0, 2.0, 2.0])
        cand = make_result("demo", [1.0, 1.0, 1.0])
        text = render_comparison(base, cand, "old", "new")
        assert "2.00x" in text
        assert "geometric mean speedup" in text

    def test_occupancy_drift(self):
        base = make_result("demo", [1.0, 1.0, 1.0],
                           kernels={"A": 0.8, "B": 0.1})
        cand = make_result("demo", [1.0, 1.0, 1.0],
                           kernels={"A": 0.5, "B": 0.4})
        drift = occupancy_drift(base, cand, "demo", InputSize.SQCIF)
        assert drift["A"] == pytest.approx(-30.0)
        assert drift["B"] == pytest.approx(30.0)

    def test_hotspot_shift_report(self):
        base = make_result("demo", [1.0, 1.0, 1.0],
                           kernels={"A": 0.8, "B": 0.1})
        cand = make_result("demo", [1.0, 1.0, 1.0],
                           kernels={"A": 0.5, "B": 0.4})
        note = hotspot_shift_report(base, cand, "demo", InputSize.SQCIF)
        assert note is not None
        assert "A -30.0pp" in note

    def test_stable_profile_none(self):
        base = make_result("demo", [1.0, 1.0, 1.0])
        note = hotspot_shift_report(base, base, "demo", InputSize.SQCIF)
        assert note is None

    def test_drift_requires_runs(self):
        base = make_result("demo", [1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            occupancy_drift(base, base, "ghost", InputSize.SQCIF)
