"""Unit tests for interpolation, resizing and pyramids."""

import numpy as np
import pytest

from repro.imgproc.interpolate import bilinear, downsample2, resize, upsample2
from repro.imgproc.pyramid import gaussian_pyramid, scale_space


class TestBilinear:
    def test_integer_positions_exact(self):
        img = np.random.default_rng(0).random((6, 7))
        rr, cc = np.meshgrid(np.arange(6), np.arange(7), indexing="ij")
        assert np.allclose(bilinear(img, rr, cc), img)

    def test_midpoint_average(self):
        img = np.array([[0.0, 1.0]])
        assert bilinear(img, 0.0, 0.5) == pytest.approx(0.5)

    def test_clamps_out_of_range(self):
        img = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert bilinear(img, -5.0, -5.0) == pytest.approx(1.0)
        assert bilinear(img, 10.0, 10.0) == pytest.approx(4.0)

    def test_scalar_and_array_queries(self):
        img = np.random.default_rng(1).random((4, 4))
        single = bilinear(img, 1.5, 2.5)
        batch = bilinear(img, np.array([1.5]), np.array([2.5]))
        assert batch[0] == pytest.approx(float(single))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            bilinear(np.ones(4), 0, 0)


class TestResize:
    def test_identity_size(self):
        img = np.random.default_rng(2).random((5, 8))
        assert np.allclose(resize(img, 5, 8), img)

    def test_corners_preserved(self):
        img = np.random.default_rng(3).random((6, 6))
        out = resize(img, 11, 11)
        assert out[0, 0] == pytest.approx(img[0, 0])
        assert out[-1, -1] == pytest.approx(img[-1, -1])

    def test_upsample2_doubles(self):
        img = np.random.default_rng(4).random((5, 7))
        assert upsample2(img).shape == (10, 14)

    def test_downsample2_halves(self):
        img = np.random.default_rng(5).random((8, 10))
        out = downsample2(img)
        assert out.shape == (4, 5)
        assert np.array_equal(out, img[::2, ::2])

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            resize(np.ones((4, 4)), 0, 4)

    def test_constant_preserved(self):
        img = np.full((6, 6), 0.3)
        assert np.allclose(resize(img, 13, 9), 0.3)


class TestGaussianPyramid:
    def test_level_shapes(self):
        img = np.random.default_rng(6).random((64, 48))
        pyr = gaussian_pyramid(img, 3)
        assert [p.shape for p in pyr] == [(64, 48), (32, 24), (16, 12)]

    def test_level_zero_is_input(self):
        img = np.random.default_rng(7).random((16, 16))
        pyr = gaussian_pyramid(img, 2)
        assert np.array_equal(pyr[0], img)

    def test_too_many_levels(self):
        with pytest.raises(ValueError):
            gaussian_pyramid(np.ones((8, 8)), 4)

    def test_at_least_one_level(self):
        with pytest.raises(ValueError):
            gaussian_pyramid(np.ones((8, 8)), 0)

    def test_coarser_levels_smoother(self):
        rng = np.random.default_rng(8)
        img = rng.standard_normal((64, 64))
        pyr = gaussian_pyramid(img, 3)
        assert pyr[2].std() < pyr[0].std()


class TestScaleSpace:
    def test_octave_structure(self):
        img = np.random.default_rng(9).random((64, 64))
        octaves = scale_space(img, 2, scales_per_octave=3)
        assert len(octaves) == 2
        assert len(octaves[0].gaussians) == 6  # s + 3
        assert len(octaves[0].dogs) == 5

    def test_sigmas_geometric(self):
        img = np.random.default_rng(10).random((32, 32))
        octaves = scale_space(img, 1, scales_per_octave=3, sigma0=1.6)
        sigmas = octaves[0].sigmas
        ratios = [sigmas[i + 1] / sigmas[i] for i in range(len(sigmas) - 1)]
        assert np.allclose(ratios, 2.0 ** (1.0 / 3.0))

    def test_dogs_are_differences(self):
        img = np.random.default_rng(11).random((32, 32))
        octave = scale_space(img, 1)[0]
        assert np.allclose(
            octave.dogs[0], octave.gaussians[1] - octave.gaussians[0]
        )

    def test_next_octave_halves(self):
        img = np.random.default_rng(12).random((64, 64))
        octaves = scale_space(img, 2)
        assert octaves[1].gaussians[0].shape == (32, 32)

    def test_too_small_image(self):
        with pytest.raises(ValueError):
            scale_space(np.ones((4, 4)), 1)

    def test_stops_when_too_small(self):
        img = np.random.default_rng(13).random((16, 16))
        octaves = scale_space(img, 5)
        assert 1 <= len(octaves) < 5
