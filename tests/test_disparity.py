"""Tests for the Disparity Map application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import stereo_pair
from repro.disparity import (
    BENCHMARK,
    correlate_window,
    dense_disparity,
    disparity_error,
    shift_right,
    ssd_map,
)


class TestShiftRight:
    def test_zero_shift_copies(self):
        img = np.random.default_rng(0).random((4, 6))
        out = shift_right(img, 0)
        assert np.array_equal(out, img)
        assert out is not img

    def test_shift_moves_columns(self):
        img = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = shift_right(img, 2)
        assert np.array_equal(out[:, 2:], img[:, :2])

    def test_border_replicates(self):
        img = np.arange(8, dtype=np.float64).reshape(2, 4)
        out = shift_right(img, 3)
        assert np.array_equal(out[:, 0], img[:, 0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            shift_right(np.ones((2, 2)), -1)


class TestSsd:
    def test_zero_at_true_shift(self):
        rng = np.random.default_rng(1)
        left = rng.random((10, 20))
        right = np.empty_like(left)
        d = 3
        right[:, :-d] = left[:, d:]
        right[:, -d:] = left[:, -1:]
        ssd = ssd_map(left, right, d)
        assert np.abs(ssd[:, d:-d]).max() < 1e-12

    def test_nonnegative(self):
        rng = np.random.default_rng(2)
        ssd = ssd_map(rng.random((6, 8)), rng.random((6, 8)), 1)
        assert (ssd >= 0).all()


class TestCorrelateWindow:
    def test_interior_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        ssd = rng.random((12, 14))
        out = correlate_window(ssd, 3)
        assert out[5, 6] == pytest.approx(ssd[4:7, 5:8].sum())

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            correlate_window(np.ones((8, 8)), 4)

    def test_oversized_window_rejected(self):
        with pytest.raises(ValueError):
            correlate_window(np.ones((4, 4)), 5)

    def test_profiler_kernels_recorded(self):
        profiler = KernelProfiler()
        with profiler.run():
            correlate_window(np.ones((10, 10)), 3, profiler)
        assert "IntegralImage" in profiler.kernel_seconds
        assert "Correlation" in profiler.kernel_seconds


class TestDenseDisparity:
    def test_recovers_known_disparity(self):
        pair = stereo_pair(InputSize.SQCIF, 0, max_disparity=12)
        result = dense_disparity(pair.left, pair.right, max_disparity=16)
        assert disparity_error(result, pair.true_disparity) < 1.0

    @pytest.mark.parametrize("variant", [1, 2])
    def test_all_variants_work(self, variant):
        pair = stereo_pair(InputSize.SQCIF, variant, max_disparity=12)
        result = dense_disparity(pair.left, pair.right, max_disparity=16)
        assert disparity_error(result, pair.true_disparity) < 1.5

    def test_disparity_in_range(self):
        pair = stereo_pair(InputSize.SQCIF, 0)
        result = dense_disparity(pair.left, pair.right, max_disparity=8)
        assert result.disparity.min() >= 0
        assert result.disparity.max() < 8

    def test_identical_images_zero_disparity(self):
        img = np.random.default_rng(4).random(InputSize.SQCIF.shape)
        result = dense_disparity(img, img, max_disparity=8)
        assert (result.disparity == 0).mean() > 0.95

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dense_disparity(np.ones((4, 8)), np.ones((4, 9)))

    def test_bad_max_disparity(self):
        img = np.ones((8, 8))
        with pytest.raises(ValueError):
            dense_disparity(img, img, max_disparity=0)
        with pytest.raises(ValueError):
            dense_disparity(img, img, max_disparity=8)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 5))
    def test_synthetic_shift_recovered(self, d):
        rng = np.random.default_rng(d)
        left = rng.random((32, 64))
        right = shift_right(left, 0)
        right[:, :-d] = left[:, d:]
        right[:, -d:] = left[:, -1:]
        result = dense_disparity(left, right, max_disparity=8, window=5,
                                 prefilter=False)
        interior = result.disparity[8:-8, 8:-8]
        assert np.median(interior) == d


class TestBenchmarkWiring:
    def test_run_outputs(self):
        profiler = KernelProfiler()
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["mean_abs_error"] < 1.5
        for kernel in ("SSD", "IntegralImage", "Correlation", "Sort"):
            assert kernel in profiler.kernel_seconds

    def test_parallelism_rows(self):
        rows = BENCHMARK.parallelism(InputSize.SQCIF)
        by_kernel = {r.kernel: r for r in rows}
        assert set(by_kernel) == {"Correlation", "IntegralImage", "Sort",
                                  "SSD"}
        # Paper ordering (weak form): SSD/Sort/Correlation all far above
        # IntegralImage, whose serial accumulation chains cap its limit.
        assert by_kernel["SSD"].parallelism >= \
            by_kernel["Correlation"].parallelism
        assert by_kernel["Sort"].parallelism > by_kernel["IntegralImage"].parallelism
        assert by_kernel["Correlation"].parallelism > \
            by_kernel["IntegralImage"].parallelism
        for row in rows:
            assert row.parallelism > 50  # all dense kernels are wide
