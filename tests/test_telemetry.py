"""Tests for the serving telemetry layer (repro.core.telemetry).

Covers the structured event log (levels, ring bounds, file sink,
thread safety), the metric-key label convention, the Prometheus text
exposition (name/label sanitization, HELP/TYPE lines, cumulative
bucket monotonicity against exact histogram counts, escaping, the
lint round-trip), and the ``sdvbs top`` snapshot/render pair.
"""

import io
import json
import threading

import pytest

from repro.core.metrics import LogHistogram, MetricsRegistry
from repro.core.telemetry import (
    EventLog,
    HELP_TEXT,
    LEVELS,
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    lint_exposition,
    metric_key,
    parse_metric_key,
    render_prometheus,
    render_top,
    sanitize_label_name,
    sanitize_metric_name,
    top_snapshot,
)


class TestEventLog:
    def test_emit_returns_record_with_fields(self):
        log = EventLog(clock=lambda: 123.0)
        record = log.emit("job.submit", id="job-1", queue_depth=3)
        assert record == {"ts": 123.0, "level": "info",
                          "event": "job.submit", "id": "job-1",
                          "queue_depth": 3}

    def test_none_fields_dropped(self):
        log = EventLog()
        record = log.emit("x", request_id=None, client="c")
        assert "request_id" not in record
        assert record["client"] == "c"

    def test_level_threshold_suppresses(self):
        log = EventLog(level="warning")
        assert log.emit("quiet", level="debug") is None
        assert log.emit("loud", level="error") is not None
        assert log.suppressed == 1
        assert log.emitted == 1
        assert [r["event"] for r in log.recent()] == ["loud"]

    def test_unknown_level_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("x", level="critical")
        with pytest.raises(ValueError):
            EventLog(level="verbose")

    def test_ring_keeps_newest(self):
        log = EventLog(capacity=3)
        for i in range(7):
            log.emit(f"e{i}")
        assert [r["event"] for r in log.recent()] == ["e4", "e5", "e6"]
        assert log.emitted == 7

    def test_recent_filters(self):
        log = EventLog()
        log.emit("a", level="debug")
        log.emit("b", level="warning")
        log.emit("a", level="error")
        assert [r["event"] for r in log.recent(level="warning")] \
            == ["b", "a"]
        assert [r["level"] for r in log.recent(event="a")] \
            == ["debug", "error"]

    def test_file_sink_receives_jsonl(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        log.emit("one", n=1)
        log.emit("two", n=2)
        lines = [json.loads(line) for line in
                 sink.getvalue().strip().splitlines()]
        assert [r["event"] for r in lines] == ["one", "two"]

    def test_path_sink_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=str(path))
        log.emit("first")
        log.close()
        log = EventLog(sink=str(path))
        log.emit("second")
        log.close()
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["first", "second"]

    def test_broken_sink_disables_not_crashes(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        sink.close()
        record = log.emit("survives")
        assert record is not None
        # The event survives in the ring, followed by the self-disable
        # warning the log leaves so the loss is visible.
        assert [r["event"] for r in log.recent()] \
            == ["survives", "events.sink_disabled"]

    def test_sink_disable_counts_and_keeps_reason(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        assert log.sink_disabled == 0
        assert log.sink_error is None
        sink.close()
        log.emit("boom")
        assert log.sink_disabled == 1
        assert "ValueError" in log.sink_error
        # The sink is dropped after the first failure; later emits go
        # only to the ring and the counter does not keep climbing.
        log.emit("after")
        assert log.sink_disabled == 1

    def test_sink_disable_warning_bypasses_level_threshold(self):
        sink = io.StringIO()
        log = EventLog(sink=sink, level="error")
        sink.close()
        log.emit("fails", level="error")
        warnings = log.recent(event="events.sink_disabled")
        assert len(warnings) == 1
        assert warnings[0]["level"] == "warning"
        assert "ValueError" in warnings[0]["error"]

    def test_sink_disable_hook_fires_with_reason(self):
        seen = []
        sink = io.StringIO()
        log = EventLog(sink=sink)
        log.on_sink_disabled = seen.append
        sink.close()
        log.emit("boom")
        assert len(seen) == 1 and "ValueError" in seen[0]

    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        events = [json.loads(line)["event"]
                  for line in log.to_jsonl().splitlines()]
        assert events == ["a", "b"]

    def test_concurrent_emitters_lose_nothing(self):
        log = EventLog(capacity=4096)
        barrier = threading.Barrier(4)

        def pound(worker):
            barrier.wait()
            for i in range(200):
                log.emit("tick", worker=worker, i=i)

        threads = [threading.Thread(target=pound, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.emitted == 800
        assert len(log.recent(limit=4096)) == 800

    def test_levels_ordering(self):
        assert LEVELS == ("debug", "info", "warning", "error")


class TestMetricKey:
    def test_no_labels_identity(self):
        assert metric_key("jobs.completed") == "jobs.completed"
        assert parse_metric_key("jobs.completed") == ("jobs.completed", {})

    def test_labels_sorted_and_round_trip(self):
        key = metric_key("job.exec_seconds", type="run", priority="high")
        assert key == "job.exec_seconds{priority=high,type=run}"
        assert parse_metric_key(key) == (
            "job.exec_seconds", {"priority": "high", "type": "run"})

    def test_reserved_characters_rejected(self):
        with pytest.raises(ValueError):
            metric_key("x", bad="a,b")
        with pytest.raises(ValueError):
            metric_key("x", bad="a=b")
        with pytest.raises(ValueError):
            metric_key("x", bad="{a}")


class TestSanitization:
    def test_metric_name_flattening(self):
        assert sanitize_metric_name("jobs.submitted") \
            == "sdvbs_jobs_submitted"
        assert sanitize_metric_name("job.queue_wait_seconds") \
            == "sdvbs_job_queue_wait_seconds"
        assert sanitize_metric_name("weird--name..x") \
            == "sdvbs_weird_name_x"

    def test_metric_name_illegal_chars_dropped(self):
        assert sanitize_metric_name("a$b%c") == "sdvbs_abc"
        assert sanitize_metric_name("$$$") == "sdvbs_metric"

    def test_metric_name_leading_digit(self):
        assert sanitize_metric_name("2fast", namespace="") == "_2fast"

    def test_no_namespace(self):
        assert sanitize_metric_name("jobs.done", namespace="") \
            == "jobs_done"

    def test_label_name(self):
        assert sanitize_label_name("job-type") == "job_type"
        assert sanitize_label_name("9lives") == "_9lives"
        assert sanitize_label_name("!!") == "label"

    def test_label_value_escaping(self):
        assert escape_label_value('say "hi"\n') == r'say \"hi\"\n'
        assert escape_label_value("back\\slash") == r"back\\slash"


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_headers(self):
        registry = MetricsRegistry()
        registry.inc("jobs.completed", 5)
        text = render_prometheus(registry)
        assert "# HELP sdvbs_jobs_completed_total " \
            + HELP_TEXT["jobs.completed"] in text
        assert "# TYPE sdvbs_jobs_completed_total counter" in text
        assert "sdvbs_jobs_completed_total 5" in text

    def test_gauge_renders_without_suffix(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue.depth", 7)
        text = render_prometheus(registry)
        assert "# TYPE sdvbs_queue_depth gauge" in text
        assert "sdvbs_queue_depth 7" in text

    def test_labeled_series_share_one_header(self):
        registry = MetricsRegistry()
        registry.set_gauge(metric_key("jobs.state", state="queued"), 2)
        registry.set_gauge(metric_key("jobs.state", state="done"), 9)
        text = render_prometheus(registry)
        assert text.count("# TYPE sdvbs_jobs_state gauge") == 1
        assert 'sdvbs_jobs_state{state="queued"} 2' in text
        assert 'sdvbs_jobs_state{state="done"} 9' in text

    def test_histogram_cumulative_and_agrees_with_exact_counts(self):
        registry = MetricsRegistry()
        key = metric_key("job.exec_seconds", type="run")
        values = [0.001, 0.002, 0.004, 0.05, 0.05, 1.7, 42.0]
        for value in values:
            registry.observe(key, value)
        text = render_prometheus(registry)
        samples = lint_exposition(text)
        buckets = [
            (float("inf") if labels["le"] == "+Inf"
             else float(labels["le"]), value)
            for labels, value in samples["sdvbs_job_exec_seconds_bucket"]
            if labels.get("type") == "run"
        ]
        buckets.sort(key=lambda p: p[0])
        counts = [value for _, value in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert buckets[-1] == (float("inf"), len(values))
        # Every recorded value must be <= its bucket's upper bound.
        exact = registry.log_histogram(key)
        (_, total_value), = [
            (labels, value) for labels, value
            in samples["sdvbs_job_exec_seconds_sum"]
            if labels.get("type") == "run"]
        assert total_value == pytest.approx(exact.total)
        (_, count_value), = [
            (labels, value) for labels, value
            in samples["sdvbs_job_exec_seconds_count"]
            if labels.get("type") == "run"]
        assert count_value == len(values)

    def test_bucket_bounds_cover_observations(self):
        histogram = LogHistogram()
        for value in (0.0001, 0.1, 10.0):
            histogram.observe(value)
        buckets = histogram.nonzero_buckets()
        assert sum(count for _, _, count in buckets) == 3
        for (low, high, _count), value in zip(buckets,
                                              (0.0001, 0.1, 10.0)):
            assert low <= value <= high

    def test_escaped_label_values_survive_lint(self):
        registry = MetricsRegistry()
        # Quotes/backslashes are legal in label VALUES once escaped;
        # metric_key reserves only , = { } for its own grammar.
        registry.set_gauge('odd{path=with "quotes" and \\slash}', 1)
        text = render_prometheus(registry)
        samples = lint_exposition(text)
        (labels, value), = samples["sdvbs_odd"]
        assert labels == {"path": 'with "quotes" and \\slash'}
        assert value == 1

    def test_lint_rejects_garbage(self):
        with pytest.raises(ValueError):
            lint_exposition("sdvbs_ok 1\n")  # no TYPE line
        with pytest.raises(ValueError):
            lint_exposition("# TYPE sdvbs_x counter\nsdvbs_x not-a-number\n")
        with pytest.raises(ValueError):
            lint_exposition("# TYPE 9bad counter\n9bad 1\n")

    def test_lint_rejects_non_monotone_histogram(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\n'
                'h_bucket{le="1"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\n"
                "h_count 5\n")
        with pytest.raises(ValueError, match="not cumulative"):
            lint_exposition(text)

    def test_lint_rejects_inf_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 4\n'
                "h_sum 1\n"
                "h_count 5\n")
        with pytest.raises(ValueError, match="_count"):
            lint_exposition(text)

    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE \
            == "text/plain; version=0.0.4; charset=utf-8"

    def test_custom_help_text_and_fallback(self):
        registry = MetricsRegistry()
        registry.inc("made.up", 1)
        registry.inc("documented", 1)
        text = render_prometheus(
            registry, help_text={"documented": "A custom help line"})
        assert "# HELP sdvbs_made_up_total sdvbs metric made.up" in text
        assert "# HELP sdvbs_documented_total A custom help line" in text


class TestTopView:
    @staticmethod
    def _fake_payloads():
        info = {
            "config": {"workers": 4},
            "counters": {"cache.misses": 6.0, "rejected.queue_full": 2.0,
                         "rejected.rate_limited": 1.0},
            "gauges": {"queue_depth": 3, "running": 2, "saturated": 1},
            "cache": {"hits": 2},
            "jobs": {"queued": 3, "running": 2, "done": 6, "failed": 1,
                     "cancelled": 0, "evicted": 0},
            "uptime_s": 12.5,
            "shutting_down": False,
        }
        metrics = {
            "histograms": {
                "job.queue_wait_seconds{type=run}": {
                    "count": 6.0, "sum": 0.6, "mean": 0.1,
                    "p50": 0.1, "p95": 0.2, "p99": 0.3},
                "job.exec_seconds{type=run}": {
                    "count": 6.0, "sum": 6.0, "mean": 1.0,
                    "p50": 0.9, "p95": 1.8, "p99": 2.0},
                "job.seconds": {"count": 6.0, "sum": 6.0, "mean": 1.0,
                                "p50": 1.0, "p95": 1.0, "p99": 1.0},
            },
        }
        return info, metrics

    def test_snapshot_folds_info_and_metrics(self):
        snapshot = top_snapshot(*self._fake_payloads())
        assert snapshot["queue_depth"] == 3
        assert snapshot["saturated"] is True
        assert snapshot["workers"] == {"busy": 2, "total": 4,
                                       "utilization_pct": 50.0}
        assert snapshot["cache"] == {"hits": 2, "misses": 6,
                                     "hit_rate_pct": 25.0}
        assert snapshot["rejected"] == 3
        assert snapshot["latency"]["run"]["queue_wait"]["p95"] == 0.2
        assert snapshot["latency"]["run"]["exec"]["count"] == 6.0
        # the unlabeled job.seconds histogram is not a top row
        assert set(snapshot["latency"]) == {"run"}

    def test_snapshot_is_json_ready(self):
        snapshot = top_snapshot(*self._fake_payloads())
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_render_shows_states_and_percentiles(self):
        text = render_top(top_snapshot(*self._fake_payloads()))
        assert "SATURATED" in text
        assert "queue    3" in text
        assert "2/4" in text
        assert "run" in text and "queue-wait" in text
        assert "(no completed jobs yet)" not in text

    def test_render_empty_server(self):
        text = render_top(top_snapshot(
            {"config": {"workers": 2}, "counters": {}, "gauges": {},
             "cache": {}, "jobs": {}, "uptime_s": 0.0,
             "shutting_down": False},
            {"histograms": {}}))
        assert "(no completed jobs yet)" in text

    def test_render_draining_banner(self):
        info, metrics = self._fake_payloads()
        info["shutting_down"] = True
        assert "DRAINING" in render_top(top_snapshot(info, metrics))

    def test_snapshot_profile_block_only_when_enabled(self):
        info, metrics = self._fake_payloads()
        assert top_snapshot(info, metrics)["profile"] is None
        info["profile"] = {"enabled": False, "jobs_sampled": 3}
        assert top_snapshot(info, metrics)["profile"] is None
        info["profile"] = {"enabled": True, "jobs_sampled": 3,
                           "samples": 120, "overhead_pct": 0.4,
                           "job_types": ["run", "report"]}
        profile = top_snapshot(info, metrics)["profile"]
        assert profile == {"jobs_sampled": 3, "samples": 120,
                           "overhead_pct": 0.4,
                           "job_types": ["report", "run"]}

    def test_snapshot_sink_disabled_from_events(self):
        info, metrics = self._fake_payloads()
        assert top_snapshot(info, metrics)["sink_disabled"] == 0
        info["events"] = {"emitted": 10, "sink_disabled": 2}
        assert top_snapshot(info, metrics)["sink_disabled"] == 2

    def test_render_profiler_line_and_sink_warning(self):
        info, metrics = self._fake_payloads()
        info["profile"] = {"enabled": True, "jobs_sampled": 3,
                           "samples": 120, "overhead_pct": 0.37,
                           "job_types": ["run"]}
        info["events"] = {"sink_disabled": 1}
        text = render_top(top_snapshot(info, metrics))
        assert "profiler      3 job(s) sampled" in text
        assert "overhead 0.37%" in text and "[run]" in text
        assert "WARNING: event-log sink disabled (1 time(s))" in text

    def test_render_quiet_without_profiler_or_sink_loss(self):
        text = render_top(top_snapshot(*self._fake_payloads()))
        assert "profiler" not in text
        assert "WARNING" not in text


class TestRegistrySnapshots:
    def test_histogram_snapshot_is_deep_copy(self):
        registry = MetricsRegistry(threadsafe=True)
        registry.observe("lat", 1.0)
        snapshot = registry.histogram_snapshot()
        registry.observe("lat", 2.0)
        assert snapshot["lat"].count == 1
        assert registry.log_histogram("lat").count == 2

    def test_histogram_summaries_have_percentiles(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            registry.observe("lat", value)
        summary = registry.histogram_summaries()["lat"]
        for stat in ("count", "sum", "mean", "p50", "p95", "p99"):
            assert stat in summary
        assert summary["count"] == 3.0

    def test_concurrent_increments_never_dropped(self):
        # The serve regression: a non-threadsafe registry under
        # concurrent workers would lose increments.
        registry = MetricsRegistry(threadsafe=True)
        barrier = threading.Barrier(8)

        def pound():
            barrier.wait()
            for _ in range(500):
                registry.inc("jobs.completed")

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counters["jobs.completed"] == 8 * 500
