"""Tests for the Face Detection (Viola-Jones) application."""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import face_scene, face_training_set
from repro.face import (
    BENCHMARK,
    Detection,
    best_stump,
    detect_faces,
    detection_hit_rate,
    evaluate_features_on_patches,
    feature_pool,
    make_feature,
    merge_detections,
    train_cascade,
    train_stage,
    trained_cascade,
)
from repro.imgproc.integral import integral_image


class TestHaarFeatures:
    def test_edge_feature_on_step(self):
        # Left half bright, right half dark: edge_h responds positively.
        patch = np.zeros((16, 16))
        patch[:, :8] = 1.0
        ii = integral_image(patch)
        feature = make_feature("edge_h", 0, 0, 16, 8)
        assert feature.evaluate(ii) > 50.0

    def test_feature_zero_on_constant(self):
        patch = np.full((16, 16), 0.7)
        ii = integral_image(patch)
        for kind in ("edge_h", "edge_v", "quad"):
            feature = make_feature(kind, 0, 0, 4, 4)
            assert feature.evaluate(ii) == pytest.approx(0.0, abs=1e-9)

    def test_line_feature_zero_on_constant(self):
        patch = np.full((16, 16), 0.3)
        ii = integral_image(patch)
        feature = make_feature("line_h", 2, 2, 4, 4)
        assert feature.evaluate(ii) == pytest.approx(0.0, abs=1e-9)

    def test_out_of_window_rejected(self):
        with pytest.raises(ValueError):
            make_feature("edge_h", 10, 10, 8, 8)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_feature("diag", 0, 0, 4, 4)

    def test_pool_nonempty_and_in_window(self):
        pool = feature_pool(stride=4, min_cell=2, max_cell=4)
        assert len(pool) > 50
        for feature in pool:
            for r0, c0, r1, c1, _w in feature.rects:
                assert 0 <= r0 <= r1 <= 16
                assert 0 <= c0 <= c1 <= 16

    def test_evaluate_on_patches_shape(self):
        patches = np.random.default_rng(0).random((5, 16, 16))
        pool = feature_pool(stride=8, min_cell=4, max_cell=4)
        values = evaluate_features_on_patches(pool, patches)
        assert values.shape == (5, len(pool))

    def test_bad_patch_shape(self):
        with pytest.raises(ValueError):
            evaluate_features_on_patches([], np.ones((3, 8, 8)))


class TestAdaBoost:
    def _separable(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        labels = (rng.random(n) < 0.5).astype(np.int64)
        # Column 0 separates perfectly; column 1 is noise.
        values = np.stack(
            [labels + rng.normal(0, 0.1, n), rng.normal(0, 1, n)], axis=1
        )
        return values, labels

    def test_best_stump_picks_informative_feature(self):
        values, labels = self._separable()
        weights = np.full(labels.size, 1.0 / labels.size)
        j, _thr, _pol, err = best_stump(values, labels, weights)
        assert j == 0
        assert err < 0.05

    def test_stage_perfect_on_separable(self):
        values, labels = self._separable()
        stage = train_stage(values, labels, n_stumps=3)
        predictions = stage.predict(values)
        # All positives pass (detection-rate bias).
        assert predictions[labels == 1].all()

    def test_stage_requires_both_classes(self):
        values = np.random.default_rng(1).random((10, 3))
        with pytest.raises(ValueError):
            train_stage(values, np.ones(10, dtype=np.int64), 2)

    def test_cascade_rejects_negatives(self):
        values, labels = self._separable(n=120, seed=2)
        features = feature_pool(stride=8, min_cell=4, max_cell=4)[:2]
        cascade = train_cascade(values, labels, features,
                                stage_sizes=(2, 4))
        decisions = cascade.classify_values(values)
        # High detection on positives, strong rejection of negatives.
        assert decisions[labels == 1].mean() > 0.9
        assert decisions[labels == 0].mean() < 0.2

    def test_trained_cascade_on_real_patches(self):
        cascade = trained_cascade(0)
        patches, labels = face_training_set(0, n_pos=40, n_neg=60)
        values = evaluate_features_on_patches(cascade.features, patches)
        decisions = cascade.classify_values(values)
        assert decisions[labels == 1].mean() > 0.85
        assert decisions[labels == 0].mean() < 0.25

    def test_used_features_subset(self):
        cascade = trained_cascade(0)
        used = cascade.used_feature_indices()
        assert used
        assert max(used) < len(cascade.features)


class TestMerge:
    def test_overlapping_merged(self):
        raw = [
            Detection(10, 10, 16, score=2.0),
            Detection(11, 11, 16, score=1.0),
            Detection(40, 40, 16, score=1.5),
        ]
        merged = merge_detections(raw)
        assert len(merged) == 2
        assert merged[0].score == 2.0  # strongest kept

    def test_disjoint_kept(self):
        raw = [Detection(0, 0, 8, 1.0), Detection(30, 30, 8, 1.0)]
        assert len(merge_detections(raw)) == 2

    def test_empty(self):
        assert merge_detections([]) == []


class TestDetection:
    def test_finds_planted_faces(self):
        cascade = trained_cascade(0)
        scene = face_scene(InputSize.SQCIF, 0)
        detections = detect_faces(cascade, scene.image)
        assert detection_hit_rate(detections, scene.true_boxes) == 1.0

    def test_hit_rate_no_truth(self):
        assert detection_hit_rate([], []) == 1.0

    def test_hit_rate_miss(self):
        assert detection_hit_rate([], [(0, 0, 16)]) == 0.0

    def test_invalid_scale(self):
        cascade = trained_cascade(0)
        with pytest.raises(ValueError):
            detect_faces(cascade, np.ones((32, 32)), scales=(0.5,))

    def test_tiny_image_no_detections(self):
        cascade = trained_cascade(0)
        assert detect_faces(cascade, np.ones((8, 8))) == []


class TestBenchmarkWiring:
    def test_run_and_kernels(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["hit_rate"] == 1.0
        assert out["detections"] < 10 * out["true_faces"]
        for kernel in ("IntegralImage", "ExtractFaces", "Merge"):
            assert kernel in profiler.kernel_seconds
        # The cascaded scan dominates detection runtime.
        assert profiler.kernel_seconds["ExtractFaces"] > \
            profiler.kernel_seconds["Merge"]

    def test_parallelism_rows(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        # Windows are independent; merging is serial.
        assert rows["ExtractFaces"].parallelism > rows["Merge"].parallelism
