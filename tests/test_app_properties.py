"""Hypothesis property tests on application-level invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.trace import Tracer, tree_sum
from repro.stitch import apply_homography, fit_affine, homography_dlt, \
    ransac_affine
from repro.svm import gram_matrix, linear_kernel, solve_svm_dual
from repro.texture import match_histogram, moments
from repro.tracking import track_feature_level
from repro.imgproc.gradient import gradient


class TestAffineProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_fit_affine_recovers_random_transform(self, seed):
        rng = np.random.default_rng(seed)
        matrix = np.eye(2) + 0.3 * rng.standard_normal((2, 2))
        assume(abs(np.linalg.det(matrix)) > 0.2)
        translation = rng.uniform(-20, 20, 2)
        src = rng.uniform(0, 50, (12, 2))
        dst = src @ matrix.T + translation
        model = fit_affine(src, dst)
        assert np.allclose(model.matrix, matrix, atol=1e-7)
        assert np.allclose(model.translation, translation, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_ransac_is_exact_without_outliers(self, seed):
        rng = np.random.default_rng(seed)
        translation = rng.uniform(-10, 10, 2)
        src = rng.uniform(0, 40, (20, 2))
        dst = src + translation
        result = ransac_affine(src, dst, seed=seed)
        assert result.n_inliers == 20
        assert np.allclose(result.model.translation, translation, atol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_homography_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        h = np.eye(3)
        h[:2, :2] += 0.2 * rng.standard_normal((2, 2))
        h[:2, 2] = rng.uniform(-5, 5, 2)
        h[2, :2] = rng.uniform(-0.002, 0.002, 2)
        assume(abs(np.linalg.det(h)) > 0.1)
        src = rng.uniform(5, 45, (16, 2))
        dst = apply_homography(h, src)
        recovered = homography_dlt(src, dst)
        assert np.allclose(apply_homography(recovered, src), dst, atol=1e-5)


class TestSvmProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dual_solution_always_feasible(self, seed):
        rng = np.random.default_rng(seed)
        n = 24
        labels = np.where(rng.random(n) < 0.5, -1.0, 1.0)
        if len(np.unique(labels)) < 2:
            labels[0] = -labels[0]
        points = rng.standard_normal((n, 3)) + np.outer(labels, [1, 1, 1])
        gram = gram_matrix(linear_kernel(), points)
        q = gram * np.outer(labels, labels)
        result = solve_svm_dual(q, labels, c=1.0)
        assert abs(labels @ result.alpha) < 1e-6
        assert (result.alpha >= -1e-9).all()
        assert (result.alpha <= 1.0 + 1e-9).all()
        # The duality gap shrinks monotonically on average.
        gaps = result.trace.duality_gaps
        assert gaps[-1] <= gaps[0]


class TestHistogramProperties:
    @settings(max_examples=25)
    @given(
        st.lists(st.floats(-10, 10, allow_nan=False), min_size=4,
                 max_size=60),
        st.integers(0, 1000),
    )
    def test_histogram_transfer_is_exact(self, target_values, seed):
        target = np.sort(np.asarray(target_values))
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(target.size)
        out = match_histogram(values, target)
        assert np.allclose(np.sort(out), target)

    @settings(max_examples=25)
    @given(st.integers(0, 1000))
    def test_moments_shift_and_scale_equivariance(self, seed):
        rng = np.random.default_rng(seed)
        sample = rng.standard_normal(500)
        base = moments(sample)
        shifted = moments(sample * 3.0 + 5.0)
        assert shifted[0] == pytest.approx(base[0] * 3.0 + 5.0)
        assert shifted[1] == pytest.approx(base[1] * 9.0)
        # Skew and kurtosis are affine invariant.
        assert shifted[2] == pytest.approx(base[2], abs=1e-9)
        assert shifted[3] == pytest.approx(base[3], abs=1e-9)


class TestKltProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(-2, 2), st.integers(-2, 2))
    def test_single_feature_recovers_integer_shift(self, dy, dx):
        rng = np.random.default_rng(abs(dy) * 10 + abs(dx))
        canvas = rng.random((48, 48))
        from repro.imgproc.filters import gaussian_blur

        canvas = gaussian_blur(canvas, 1.0)
        prev = canvas[4:36, 4:36]
        nxt = canvas[4 + dy : 36 + dy, 4 + dx : 36 + dx]
        gx, gy = gradient(prev)
        (got_dy, got_dx), converged, _residual = track_feature_level(
            prev, nxt, gx, gy, row=16.0, col=16.0, guess=(0.0, 0.0),
            half=6, iterations=30,
        )
        assert converged
        # Window moves by (dy, dx) -> content moves by (-dy, -dx).
        assert got_dy == pytest.approx(-dy, abs=0.2)
        assert got_dx == pytest.approx(-dx, abs=0.2)


class TestTracerProperties:
    @settings(max_examples=25)
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                    max_size=40))
    def test_tree_sum_value_matches_python_sum(self, values):
        tracer = Tracer()
        total = tree_sum(tracer.constants(values))
        assert float(total) == pytest.approx(sum(values), rel=1e-9,
                                             abs=1e-9)

    @settings(max_examples=25)
    @given(st.integers(1, 64))
    def test_tree_sum_span_is_logarithmic(self, n):
        tracer = Tracer()
        tree_sum(tracer.constants([1.0] * n))
        assert tracer.span <= int(np.ceil(np.log2(max(n, 2)))) + 1
