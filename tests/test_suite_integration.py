"""Integration tests: registry, runner, reports and CLI glue."""

import numpy as np
import pytest

from repro import (
    ALL_SIZES,
    InputSize,
    all_benchmarks,
    get_benchmark,
    render_figure2,
    render_figure3,
    render_suite_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_benchmark,
    run_suite,
)
from repro.cli import main as cli_main
from repro.core import NON_KERNEL_WORK, figure2_benchmarks, table4_benchmarks
from repro.core.runner import scaling_series
from repro.core.sysinfo import system_configuration


class TestRegistry:
    def test_nine_applications(self):
        assert len(all_benchmarks()) == 9

    def test_table1_order(self):
        names = [b.name for b in all_benchmarks()]
        assert names == [
            "Disparity Map",
            "Feature Tracking",
            "Image Segmentation",
            "SIFT",
            "Robot Localization",
            "SVM",
            "Face Detection",
            "Image Stitch",
            "Texture Synthesis",
        ]

    def test_get_benchmark(self):
        assert get_benchmark("sift").name == "SIFT"

    def test_unknown_slug(self):
        with pytest.raises(KeyError):
            get_benchmark("raytracer")

    def test_figure2_has_six(self):
        # Paper Figure 2 plots disparity, tracking, SIFT, stitch,
        # localization, segmentation.
        slugs = {b.slug for b in figure2_benchmarks()}
        assert slugs == {
            "disparity", "tracking", "sift", "stitch", "localization",
            "segmentation",
        }

    def test_every_benchmark_has_kernels_and_metadata(self):
        for bench in all_benchmarks():
            assert bench.kernels
            assert bench.description
            assert bench.application_domain
            assert callable(bench.setup)
            assert callable(bench.run)

    def test_table4_models_present(self):
        assert len(table4_benchmarks()) == 9


class TestRunner:
    def test_run_benchmark_record(self):
        bench = get_benchmark("disparity")
        record = run_benchmark(bench, InputSize.SQCIF, 0)
        assert record.total_seconds > 0
        assert record.kernel_seconds
        shares = record.occupancy()
        assert sum(shares.values()) == pytest.approx(100.0, abs=1e-6)

    def test_kernel_names_match_declaration(self):
        for slug in ("disparity", "stitch", "svm"):
            bench = get_benchmark(slug)
            record = run_benchmark(bench, InputSize.SQCIF, 0)
            declared = set(bench.kernel_names())
            assert set(record.kernel_seconds) <= declared

    def test_run_suite_subset(self):
        result = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                           variants=[0, 1])
        assert len(result.runs) == 2
        assert result.benchmarks() == ["disparity"]

    def test_scaling_series_monotone_for_disparity(self):
        result = run_suite(["disparity"], variants=[0])
        series = scaling_series(result, "disparity")
        assert [p.relative_size for p in series] == [1, 2, 4]
        assert series[0].relative_time == pytest.approx(1.0)
        # Data-intensive: runtime grows with input size.
        assert series[2].relative_time > series[0].relative_time


class TestReports:
    def test_table1_mentions_all(self):
        text = render_table1()
        for bench in all_benchmarks():
            assert bench.name in text

    def test_table2_includes_characteristics(self):
        text = render_table2()
        assert "Data intensive" in text
        assert "Computationally intensive" in text

    def test_table3_host_rows(self):
        text = render_table3()
        assert "Operating System" in text
        assert "Processors" in text
        config = system_configuration()
        assert "Memory" in config

    def test_table4_lists_kernels(self):
        text = render_table4()
        for fragment in ("disparity", "SSD", "tracking", "MatrixInversion",
                         "sift", "svm", "stitch"):
            assert fragment in text

    def test_figure_reports_render(self):
        result = run_suite(["disparity", "segmentation"],
                           sizes=[InputSize.SQCIF], variants=[0])
        fig3 = render_figure3(result)
        assert "Disparity Map" in fig3
        assert NON_KERNEL_WORK in fig3
        summary = render_suite_summary(result)
        assert "disparity" in summary

    def test_figure2_normalized(self):
        result = run_suite(["disparity"], variants=[0])
        text = render_figure2(result, ["disparity"])
        assert "1.00x" in text


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        assert "Disparity Map" in capsys.readouterr().out

    def test_tables(self, capsys):
        assert cli_main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I." in out
        assert "Table III." in out

    def test_table4(self, capsys):
        assert cli_main(["table4"]) == 0
        assert "Parallelism" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert cli_main(["run", "disparity", "--sizes", "sqcif"]) == 0
        out = capsys.readouterr().out
        assert "disparity" in out
        assert "SSD" in out


class TestCrossApplication:
    """Invariants that hold across the whole suite."""

    @pytest.mark.parametrize(
        "slug", [b.slug for b in all_benchmarks()]
    )
    def test_each_benchmark_runs_clean(self, slug):
        bench = get_benchmark(slug)
        record = run_benchmark(bench, InputSize.SQCIF, 1)
        assert record.total_seconds > 0
        # Most of the runtime is attributed to named kernels.
        assert record.occupancy()[NON_KERNEL_WORK] < 50.0

    def test_parallelism_estimates_scale_with_input(self):
        # Dense kernels get wider with more pixels (paper: "large amounts
        # of inherent parallelism ... yet larger inputs").
        for slug in ("disparity", "stitch"):
            small = {
                r.kernel: r.parallelism
                for r in get_benchmark(slug).parallelism(InputSize.SQCIF)
            }
            large = {
                r.kernel: r.parallelism
                for r in get_benchmark(slug).parallelism(InputSize.CIF)
            }
            assert any(large[k] > small[k] for k in small)

    def test_all_sizes_constant(self):
        assert list(ALL_SIZES) == [InputSize.SQCIF, InputSize.QCIF,
                                   InputSize.CIF]
