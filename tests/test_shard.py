"""Tests for sharded suite execution: plan / run / merge."""

import json
import os

import pytest

from repro.core.export import result_to_dict, result_to_json
from repro.core.history import JsonlHistory, SqliteHistory
from repro.core.shard import (
    CHECKPOINT_SCHEMA,
    SHARD_SPEC_SCHEMA,
    ShardSpec,
    default_checkpoint_path,
    load_checkpoints,
    merge_shards,
    plan_cells,
    plan_digest,
    plan_shards,
    run_shard,
)
from repro.core.types import BenchmarkRun, InputSize

SLUGS = ["disparity", "tracking", "sift"]


def small_plan(count=2, **kwargs):
    return plan_shards(count, SLUGS,
                       sizes=[InputSize.SQCIF, InputSize.QCIF],
                       variants=[0], backends=["fast"], **kwargs)


def fake_run(cell):
    return BenchmarkRun(
        benchmark=cell.benchmark,
        size=InputSize[cell.size],
        variant=cell.variant,
        total_seconds=0.5 + cell.plan_index,
        kernel_seconds={"K": 0.25},
        kernel_calls={"K": 2},
    )


def fake_runner(cell, spec):
    return fake_run(cell)


class KillAfter:
    """A cell runner that simulates a mid-shard kill after N cells."""

    def __init__(self, n):
        self.n = n
        self.executed = []

    def __call__(self, cell, spec):
        if len(self.executed) >= self.n:
            raise KeyboardInterrupt("killed mid-shard")
        self.executed.append(cell.cell_id)
        return fake_run(cell)


class Counting:
    def __init__(self):
        self.executed = []

    def __call__(self, cell, spec):
        self.executed.append(cell.cell_id)
        return fake_run(cell)


class TestPlan:
    def test_deterministic(self):
        first = [spec.to_dict() for spec in small_plan()]
        second = [spec.to_dict() for spec in small_plan()]
        assert first == second

    def test_cells_partition_the_grid(self):
        specs = small_plan(count=4)
        grid = [cell.cell_id for cell in plan_cells(
            SLUGS, sizes=[InputSize.SQCIF, InputSize.QCIF], variants=[0])]
        shard_ids = [cell.cell_id for spec in specs for cell in spec.cells]
        assert sorted(shard_ids) == sorted(grid)
        assert len(shard_ids) == len(set(shard_ids))

    def test_round_robin_split(self):
        specs = small_plan(count=2)
        assert [c.plan_index for c in specs[0].cells] == [0, 2, 4]
        assert [c.plan_index for c in specs[1].cells] == [1, 3, 5]

    def test_cell_id_shape(self):
        cell = plan_cells(["disparity"], sizes=[InputSize.CIF],
                          variants=[3], backends=["ref"])[0]
        assert cell.cell_id == "disparity:CIF:v3:ref"

    def test_digest_covers_grid_and_knobs(self):
        base = small_plan()[0].plan
        assert small_plan()[0].plan == base
        assert small_plan(repeats=5)[0].plan != base
        assert small_plan(warmup=1)[0].plan != base
        other_grid = plan_shards(2, ["disparity"], sizes=[InputSize.SQCIF])
        assert other_grid[0].plan != base

    def test_all_shards_share_plan_and_count(self):
        specs = small_plan(count=3)
        assert len({spec.plan for spec in specs}) == 1
        assert [spec.index for spec in specs] == [0, 1, 2]
        assert all(spec.count == 3 for spec in specs)

    def test_backend_dimension(self):
        cells = plan_cells(["disparity"], sizes=[InputSize.SQCIF],
                           backends=["ref", "fast"])
        assert [c.cell_id for c in cells] == [
            "disparity:SQCIF:v0:ref", "disparity:SQCIF:v0:fast"]

    def test_unknown_slug_raises(self):
        with pytest.raises(KeyError):
            plan_shards(2, ["ghost"])

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            plan_shards(2, ["disparity"], backends=["cuda"])

    def test_bad_count_raises(self):
        with pytest.raises(ValueError):
            plan_shards(0, ["disparity"])

    def test_spec_file_round_trip(self, tmp_path):
        spec = small_plan()[0]
        path = str(tmp_path / "shard-000.json")
        spec.write(path)
        restored = ShardSpec.read(path)
        assert restored == spec
        payload = json.loads((tmp_path / "shard-000.json").read_text())
        assert payload["schema"] == SHARD_SPEC_SCHEMA

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError):
            ShardSpec.read(str(path))

    def test_default_checkpoint_path(self):
        assert default_checkpoint_path("plan/shard-000.json") == \
            "plan/shard-000.ckpt.jsonl"


class TestRunShard:
    def _spec(self):
        return small_plan(count=1)[0]

    def test_full_run_checkpoints_every_cell(self, tmp_path):
        spec = self._spec()
        ckpt = str(tmp_path / "s.ckpt.jsonl")
        report = run_shard(spec, ckpt, runner=fake_runner)
        assert report.executed == spec.cell_ids()
        assert report.skipped == []
        lines = [json.loads(l) for l in open(ckpt) if l.strip()]
        assert [l["cell"] for l in lines] == spec.cell_ids()
        assert all(l["schema"] == CHECKPOINT_SCHEMA for l in lines)
        assert all(l["plan"] == spec.plan for l in lines)
        # Result covers every cell in spec order with the shard block.
        assert [r.benchmark for r in report.result.runs] == \
            [c.benchmark for c in spec.cells]
        assert report.result.shard["plan"] == spec.plan
        assert report.result.shard["index"] == 0

    def test_kill_mid_shard_then_resume_runs_only_missing(self, tmp_path):
        spec = self._spec()
        total = len(spec.cells)
        killed = KillAfter(2)
        ckpt = str(tmp_path / "s.ckpt.jsonl")
        with pytest.raises(KeyboardInterrupt):
            run_shard(spec, ckpt, runner=killed)
        assert len(load_checkpoints(ckpt, spec.plan)) == 2

        resumed = Counting()
        report = run_shard(spec, ckpt, resume=True, runner=resumed)
        # Exactly M-K cells execute, and they are the missing ones.
        assert resumed.executed == spec.cell_ids()[2:]
        assert len(report.executed) == total - 2
        assert report.skipped == spec.cell_ids()[:2]

        # The resumed result is cell-identical to an uninterrupted run.
        clean = run_shard(spec, str(tmp_path / "clean.ckpt.jsonl"),
                          runner=fake_runner)
        assert result_to_dict(report.result) == result_to_dict(clean.result)

    def test_existing_checkpoint_without_resume_refuses(self, tmp_path):
        spec = self._spec()
        ckpt = str(tmp_path / "s.ckpt.jsonl")
        run_shard(spec, ckpt, runner=fake_runner)
        with pytest.raises(FileExistsError):
            run_shard(spec, ckpt, runner=fake_runner)

    def test_truncated_checkpoint_line_reexecutes_cell(self, tmp_path):
        spec = self._spec()
        ckpt = str(tmp_path / "s.ckpt.jsonl")
        run_shard(spec, ckpt, runner=fake_runner)
        # Simulate a writer killed mid-append: chop the last line.
        text = open(ckpt).read()
        open(ckpt, "w").write(text[:-40])
        resumed = Counting()
        run_shard(spec, ckpt, resume=True, runner=resumed)
        assert resumed.executed == [spec.cell_ids()[-1]]

    def test_foreign_plan_checkpoints_ignored(self, tmp_path):
        spec = self._spec()
        ckpt = str(tmp_path / "s.ckpt.jsonl")
        other = ShardSpec(index=0, count=1, plan="feedfacedeadbeef",
                          warmup=0, repeats=1, cells=spec.cells)
        run_shard(other, ckpt, runner=fake_runner)
        with pytest.warns(RuntimeWarning, match="different plan"):
            completed = load_checkpoints(ckpt, spec.plan)
        assert completed == {}
        # ... so every cell of the real plan still executes on resume.
        resumed = Counting()
        with pytest.warns(RuntimeWarning, match="different plan"):
            run_shard(spec, ckpt, resume=True, runner=resumed)
        assert resumed.executed == spec.cell_ids()


def _shard_exports(tmp_path, count=2):
    """Run a small plan's shards with the fake runner; return payloads."""
    specs = small_plan(count=count)
    payloads = []
    for spec in specs:
        report = run_shard(
            spec, str(tmp_path / f"s{spec.index}.ckpt.jsonl"),
            runner=fake_runner)
        report.result.manifest = {
            "schema": "sdvbs-repro/manifest/v1",
            "created": "2026-08-07T00:00:00",
            "measurement": {"backend": "fast"},
            "argv": ["shard", "run", f"shard-{spec.index:03d}.json"],
        }
        payloads.append(json.loads(result_to_json(report.result)))
    return specs, payloads


class TestMerge:
    def test_merged_runs_in_plan_order(self, tmp_path):
        specs, payloads = _shard_exports(tmp_path)
        report = merge_shards(payloads)
        grid = [c.cell_id for c in plan_cells(
            SLUGS, sizes=[InputSize.SQCIF, InputSize.QCIF], variants=[0])]
        merged_ids = [c["id"] for c in report.result.shard["cells"]]
        assert merged_ids == grid
        assert report.complete
        assert report.merged_from == [0, 1]
        # plan_index encodes total_seconds in fake_run: order must be 0..5.
        assert [r.total_seconds for r in report.result.runs] == \
            [0.5 + i for i in range(6)]

    def test_merge_is_deterministic(self, tmp_path):
        _, payloads = _shard_exports(tmp_path)
        first = merge_shards(payloads).result
        second = merge_shards(payloads).result
        assert result_to_dict(first) == result_to_dict(second)

    def test_merged_manifest_argv_is_canonical(self, tmp_path):
        specs, payloads = _shard_exports(tmp_path)
        report = merge_shards(payloads)
        # Shard argvs differ per spec file; the merged manifest must not
        # depend on them or history ingest would never be idempotent.
        assert report.result.manifest["argv"] == \
            ["shard", "merge", specs[0].plan]

    def test_mismatched_plans_refuse(self, tmp_path):
        _, payloads = _shard_exports(tmp_path)
        payloads[1]["shard"]["plan"] = "feedfacedeadbeef"
        with pytest.raises(ValueError, match="different plans"):
            merge_shards(payloads)

    def test_unsharded_export_refused(self, tmp_path):
        _, payloads = _shard_exports(tmp_path)
        del payloads[0]["shard"]
        with pytest.raises(ValueError, match="shard block"):
            merge_shards(payloads)

    def test_nothing_to_merge_raises(self):
        with pytest.raises(ValueError):
            merge_shards([])

    def test_duplicate_cells_keep_first(self, tmp_path):
        _, payloads = _shard_exports(tmp_path)
        report = merge_shards([payloads[0], payloads[0], payloads[1]])
        assert len(report.result.runs) == 6
        assert sorted(set(report.duplicates)) == \
            sorted(c["id"] for c in payloads[0]["shard"]["cells"])

    def test_absent_shard_reported_incomplete(self, tmp_path):
        _, payloads = _shard_exports(tmp_path)
        report = merge_shards([payloads[0]])
        assert not report.complete
        assert report.merged_from == [0]
        assert report.expected_shards == 2

    @pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
    def test_history_ingest_idempotent_across_remerges(self, tmp_path,
                                                       backend):
        _, payloads = _shard_exports(tmp_path)
        if backend == "sqlite":
            store = SqliteHistory(str(tmp_path / "h.sqlite"))
        else:
            store = JsonlHistory(str(tmp_path / "h.jsonl"))
        first = store.record(merge_shards(payloads).result, commit="c1")
        assert len(first) == 6  # 3 benchmarks x 2 sizes
        again = store.record(merge_shards(payloads).result, commit="c1")
        assert again == []
        store.close()


class TestCliShard:
    """End-to-end `sdvbs shard` with real (tiny) benchmark executions."""

    def _plan(self, tmp_path):
        from repro.cli import main as cli_main

        plan_dir = str(tmp_path / "plan")
        assert cli_main(["shard", "plan", "disparity", "tracking",
                         "--sizes", "sqcif", "--shards", "2",
                         "--out-dir", plan_dir]) == 0
        return plan_dir

    def test_plan_run_merge_status_round_trip(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        plan_dir = self._plan(tmp_path)
        specs = sorted(os.listdir(plan_dir))
        assert specs == ["shard-000.json", "shard-001.json"]

        # An unfinished plan reports missing cells with exit 1.
        assert cli_main(["shard", "status", plan_dir]) == 1
        capsys.readouterr()

        for name in specs:
            assert cli_main(["shard", "run",
                             os.path.join(plan_dir, name)]) == 0
        assert cli_main(["shard", "status", plan_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("1/1 done") == 2

        merged = str(tmp_path / "merged.json")
        db = str(tmp_path / "history.sqlite")
        exports = [os.path.join(plan_dir, f"shard-{i:03d}.result.json")
                   for i in (0, 1)]
        assert cli_main(["shard", "merge", *exports, "--out", merged,
                         "--db", db, "--commit", "shardci"]) == 0
        out = capsys.readouterr().out
        assert "merged 2 cell(s)" in out
        assert "recorded 2 new cell(s)" in out

        payload = json.loads(open(merged).read())
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        assert payload["shard"]["merged_from"] == [0, 1]
        benchmarks = {run["benchmark"] for run in payload["runs"]}
        assert benchmarks == {"disparity", "tracking"}

        # Re-merging the same shard exports adds zero history entries.
        assert cli_main(["shard", "merge", *exports, "--out", merged,
                         "--db", db, "--commit", "shardci"]) == 0
        assert "recorded 0 new cell(s)" in capsys.readouterr().out

    def test_run_resume_skips_completed_cells(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        plan_dir = self._plan(tmp_path)
        spec = os.path.join(plan_dir, "shard-000.json")
        assert cli_main(["shard", "run", spec]) == 0
        capsys.readouterr()
        # Without --resume a populated checkpoint refuses ...
        assert cli_main(["shard", "run", spec]) == 2
        assert "--resume" in capsys.readouterr().err
        # ... with it, nothing re-executes.
        assert cli_main(["shard", "run", spec, "--resume"]) == 0
        assert "executed 0 cell(s)" in capsys.readouterr().out

    def test_plan_rejects_unknown_slug(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["shard", "plan", "ghost",
                         "--out-dir", str(tmp_path / "p")]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_status_on_missing_dir(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["shard", "status",
                         str(tmp_path / "nothing")]) == 2

    def test_merge_rejects_unreadable_export(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["shard", "merge", str(tmp_path / "nope.json"),
                         "--out", str(tmp_path / "m.json")]) == 2
