"""Tests for MSER, multiclass SVM and the enhancement kernels."""

import numpy as np
import pytest

from repro.imgproc.enhance import (
    add_salt_pepper,
    histogram_equalize,
    median_filter,
)
from repro.sift.mser import MserRegion, detect_mser
from repro.svm.multiclass import OneVsRestSVM, multiclass_blobs
from repro.svm import linear_kernel


def disk_image(side=48, center=(20, 28), radius=8, fg=0.15, bg=0.9,
               noise=0.01, seed=0):
    img = np.full((side, side), bg)
    yy, xx = np.ogrid[:side, :side]
    img[(yy - center[0]) ** 2 + (xx - center[1]) ** 2 <= radius**2] = fg
    img += noise * np.random.default_rng(seed).standard_normal((side, side))
    return img


class TestMser:
    def test_finds_dark_disk(self):
        regions = detect_mser(disk_image(), polarity="dark")
        assert regions
        best = min(
            regions,
            key=lambda reg: abs(reg.centroid[0] - 20) + abs(
                reg.centroid[1] - 28
            ),
        )
        assert abs(best.centroid[0] - 20) < 2
        assert abs(best.centroid[1] - 28) < 2
        assert 100 < best.area < 320

    def test_bright_polarity(self):
        img = disk_image(fg=0.9, bg=0.15)
        dark_regions = detect_mser(img, polarity="dark")
        bright_regions = detect_mser(img, polarity="bright")
        assert bright_regions
        hits = [
            reg for reg in bright_regions
            if abs(reg.centroid[0] - 20) < 3 and abs(reg.centroid[1] - 28) < 3
        ]
        assert hits
        assert not any(
            abs(reg.centroid[0] - 20) < 3 and abs(reg.centroid[1] - 28) < 3
            and 100 < reg.area < 320
            for reg in dark_regions
        )

    def test_two_disks_two_regions(self):
        img = np.full((48, 64), 0.9)
        yy, xx = np.ogrid[:48, :64]
        img[(yy - 14) ** 2 + (xx - 14) ** 2 <= 36] = 0.1
        img[(yy - 32) ** 2 + (xx - 48) ** 2 <= 36] = 0.15
        regions = detect_mser(img, min_area=20)
        centroids = {(round(r.centroid[0]), round(r.centroid[1]))
                     for r in regions}
        assert any(abs(r - 14) <= 2 and abs(c - 14) <= 2
                   for r, c in centroids)
        assert any(abs(r - 32) <= 2 and abs(c - 48) <= 2
                   for r, c in centroids)

    def test_flat_image_no_regions(self):
        assert detect_mser(np.full((32, 32), 0.5)) == []

    def test_region_pixels_match_area(self):
        regions = detect_mser(disk_image(), polarity="dark")
        for region in regions:
            assert isinstance(region, MserRegion)
            assert region.pixels.shape[0] >= region.area * 0.5

    def test_input_validation(self):
        with pytest.raises(ValueError):
            detect_mser(np.ones(8))
        with pytest.raises(ValueError):
            detect_mser(np.ones((8, 8)), polarity="sideways")
        with pytest.raises(ValueError):
            detect_mser(np.ones((8, 8)), delta=0)


class TestMulticlass:
    def test_separable_blobs(self):
        points, labels = multiclass_blobs(n_classes=3, per_class=25,
                                          separation=4.0, seed=0)
        model = OneVsRestSVM(kernel_factory=linear_kernel, c=5.0)
        model.fit(points, labels)
        assert model.accuracy(points, labels) > 0.9

    def test_generalizes(self):
        train = multiclass_blobs(n_classes=3, per_class=30, seed=1)
        test = multiclass_blobs(n_classes=3, per_class=20, seed=1)
        # Same centers (same seed), fresh noise comes from per-call rng —
        # regenerate with different per_class to vary samples.
        model = OneVsRestSVM(kernel_factory=linear_kernel, c=5.0)
        model.fit(*train)
        assert model.accuracy(*test) > 0.8

    def test_decision_matrix_shape(self):
        points, labels = multiclass_blobs(n_classes=4, per_class=15, seed=2)
        model = OneVsRestSVM(kernel_factory=linear_kernel).fit(points,
                                                               labels)
        values = model.decision_matrix(points[:7])
        assert values.shape == (7, 4)
        assert len(model.classes) == 4

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            OneVsRestSVM().fit(np.ones((4, 2)), np.zeros(4))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            OneVsRestSVM().decision_matrix(np.ones((2, 2)))


class TestMedianFilter:
    def test_removes_salt_pepper(self):
        clean = np.full((32, 32), 0.5)
        noisy = add_salt_pepper(clean, fraction=0.08, seed=0)
        filtered = median_filter(noisy, size=3)
        assert np.abs(filtered - clean).mean() < \
            0.2 * np.abs(noisy - clean).mean()

    def test_preserves_constant(self):
        img = np.full((10, 10), 0.7)
        assert np.allclose(median_filter(img, 3), img)

    def test_preserves_step_edge(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        filtered = median_filter(img, 3)
        assert np.allclose(filtered[:, :7], 0.0)
        assert np.allclose(filtered[:, 9:], 1.0)

    def test_size_one_identity(self):
        img = np.random.default_rng(0).random((8, 8))
        assert np.array_equal(median_filter(img, 1), img)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            median_filter(np.ones((8, 8)), 4)


class TestHistogramEqualize:
    def test_output_range(self):
        img = np.random.default_rng(1).random((32, 32)) * 0.2 + 0.4
        out = histogram_equalize(img)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_flattens_histogram(self):
        rng = np.random.default_rng(2)
        # Heavily skewed intensities.
        img = rng.random((64, 64)) ** 4
        out = histogram_equalize(img)
        hist, _ = np.histogram(out, bins=8, range=(0, 1))
        in_hist, _ = np.histogram(img, bins=8, range=(0, 1))
        assert hist.std() < in_hist.std()

    def test_monotone(self):
        img = np.random.default_rng(3).random((16, 16))
        out = histogram_equalize(img)
        order_in = np.argsort(img.ravel(), kind="stable")
        sorted_out = out.ravel()[order_in]
        assert (np.diff(sorted_out) >= -1e-12).all()

    def test_constant_image(self):
        assert np.allclose(histogram_equalize(np.full((8, 8), 0.3)), 0.0)

    def test_salt_pepper_fraction(self):
        img = np.full((50, 50), 0.5)
        noisy = add_salt_pepper(img, fraction=0.1, seed=4)
        changed = (noisy != img).sum()
        # Half the impulses land on 0, half on 1; some may coincide with
        # the original value only if it were 0/1 (it is 0.5).
        assert changed == int(0.1 * img.size)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            histogram_equalize(np.ones((8, 8)), bins=1)
        with pytest.raises(ValueError):
            add_salt_pepper(np.ones((8, 8)), fraction=1.5)
