"""Tests for the disparity refinements and the Efros-Leung baseline."""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import stereo_pair, texture_sample
from repro.disparity import (
    dense_disparity,
    dense_disparity_sad,
    disparity_error,
    disparity_right_to_left,
    left_right_consistency,
    subpixel_disparity,
)
from repro.texture import analyze, synthesize_efros_leung


class TestSadMatching:
    def test_recovers_truth(self):
        pair = stereo_pair(InputSize.SQCIF, 0, max_disparity=12)
        result = dense_disparity_sad(pair.left, pair.right,
                                     max_disparity=16)
        assert disparity_error(result, pair.true_disparity) < 1.0

    def test_profiles_same_kernels(self):
        pair = stereo_pair(InputSize.SQCIF, 1, max_disparity=12)
        profiler = KernelProfiler()
        with profiler.run():
            dense_disparity_sad(pair.left, pair.right, max_disparity=8,
                                profiler=profiler)
        for kernel in ("SSD", "IntegralImage", "Correlation", "Sort"):
            assert kernel in profiler.kernel_seconds

    def test_input_validation(self):
        with pytest.raises(ValueError):
            dense_disparity_sad(np.ones((8, 8)), np.ones((8, 9)))
        with pytest.raises(ValueError):
            dense_disparity_sad(np.ones((8, 8)), np.ones((8, 8)),
                                max_disparity=0)


class TestLeftRightConsistency:
    def test_valid_pixels_are_accurate(self):
        pair = stereo_pair(InputSize.SQCIF, 0, max_disparity=12)
        left = dense_disparity_sad(pair.left, pair.right, max_disparity=16)
        right = disparity_right_to_left(pair.left, pair.right,
                                        max_disparity=16)
        consistency = left_right_consistency(left, right)
        assert 0.0 <= consistency.invalid_fraction < 0.3
        interior = consistency.disparity[8:-8, 8:-8]
        truth = pair.true_disparity[8:-8, 8:-8]
        valid_error = np.nanmean(np.abs(interior - truth))
        # Cross-checked pixels are cleaner than the raw map.
        raw_error = disparity_error(left, pair.true_disparity)
        assert valid_error <= raw_error + 1e-9

    def test_nan_marks_invalid(self):
        pair = stereo_pair(InputSize.SQCIF, 2, max_disparity=12)
        left = dense_disparity_sad(pair.left, pair.right, max_disparity=16)
        right = disparity_right_to_left(pair.left, pair.right,
                                        max_disparity=16)
        consistency = left_right_consistency(left, right)
        assert np.isnan(consistency.disparity[~consistency.valid]).all()
        assert not np.isnan(consistency.disparity[consistency.valid]).any()


class TestSubpixel:
    def test_close_to_integer_truth(self):
        pair = stereo_pair(InputSize.SQCIF, 0, max_disparity=12)
        refined = subpixel_disparity(pair.left, pair.right,
                                     max_disparity=16)
        interior = refined[8:-8, 8:-8]
        truth = pair.true_disparity[8:-8, 8:-8]
        assert np.abs(interior - truth).mean() < 1.0

    def test_offsets_bounded(self):
        pair = stereo_pair(InputSize.SQCIF, 1, max_disparity=12)
        refined = subpixel_disparity(pair.left, pair.right,
                                     max_disparity=16)
        # subpixel_disparity builds its volume without prefiltering, so
        # compare against the matching integer winner.
        integer = dense_disparity(pair.left, pair.right, max_disparity=16,
                                  prefilter=False).disparity
        assert np.abs(refined - integer).max() <= 0.5 + 1e-9


class TestEfrosLeung:
    def test_grows_full_output(self):
        exemplar = texture_sample(InputSize.SQCIF, 0, "structural")[:20, :20]
        result = synthesize_efros_leung(exemplar, (28, 28), window=7,
                                        seed=0)
        assert result.texture.shape == (28, 28)
        assert result.pixels_synthesized == 28 * 28 - 7 * 7

    def test_output_values_from_exemplar(self):
        exemplar = texture_sample(InputSize.SQCIF, 1, "structural")[:18, :18]
        result = synthesize_efros_leung(exemplar, (24, 24), window=5,
                                        seed=1)
        # Every synthesized value is copied from some exemplar pixel.
        exemplar_values = set(np.round(exemplar.ravel(), 12))
        synth_values = set(np.round(result.texture.ravel(), 12))
        assert synth_values <= exemplar_values | {0.0}

    def test_statistically_closer_than_noise(self):
        exemplar = texture_sample(InputSize.SQCIF, 0, "structural")[:24, :24]
        result = synthesize_efros_leung(exemplar, (32, 32), window=7,
                                        seed=0)
        target = analyze(exemplar, n_levels=2)
        synth_stats = analyze(result.texture, n_levels=2)
        noise = np.random.default_rng(0).random((32, 32))
        noise_stats = analyze(noise, n_levels=2)
        assert target.distance(synth_stats) < target.distance(noise_stats)

    def test_input_validation(self):
        exemplar = np.random.default_rng(2).random((16, 16))
        with pytest.raises(ValueError):
            synthesize_efros_leung(exemplar, (32, 32), window=4)
        with pytest.raises(ValueError):
            synthesize_efros_leung(exemplar, (4, 4), window=7)
        with pytest.raises(ValueError):
            synthesize_efros_leung(exemplar[:4, :4], (32, 32), window=7)
