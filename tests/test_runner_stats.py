"""Tests for the measurement-robust runner: warmup/repeats aggregation,
parallel-jobs equivalence, and the occupancy-normalization regression."""

import pytest

from repro.core import InputSize, run_suite
from repro.core.profiler import NullProfiler, ensure_profiler
from repro.core.registry import Benchmark
from repro.core.runner import run_benchmark, scaling_series
from repro.core.types import (
    NON_KERNEL_WORK,
    AggregatedRun,
    BenchmarkRun,
    Characteristic,
    ConcentrationArea,
    KernelInfo,
    ParallelismClass,
    RunStats,
    SuiteResult,
)


class FakeClock:
    """Deterministic clock: advances only when told."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_fake_benchmark(clock, schedule):
    """A benchmark whose n-th execution takes ``schedule[n]`` fake seconds
    inside a single named kernel."""
    durations = list(schedule)

    def setup(size, variant):
        return {"size": size, "variant": variant}

    def run(workload, profiler):
        with profiler.kernel("K"):
            clock.advance(durations.pop(0))
        return {"ok": True}

    return Benchmark(
        name="Fake",
        slug="fake",
        area=ConcentrationArea.IMAGE_ANALYSIS,
        description="deterministic fake workload",
        characteristic=Characteristic.COMPUTE_INTENSIVE,
        application_domain="testing",
        kernels=(KernelInfo("K", "the kernel", ParallelismClass.DLP),),
        setup=setup,
        run=run,
    )


class TestRunStats:
    def test_aggregates(self):
        stats = RunStats.of([3.0, 1.0, 2.0])
        assert stats.min == 1.0
        assert stats.max == 3.0
        assert stats.median == 2.0
        assert stats.mean == pytest.approx(2.0)
        assert stats.stddev == pytest.approx(1.0)

    def test_even_count_median(self):
        assert RunStats.of([1.0, 2.0, 3.0, 10.0]).median == pytest.approx(2.5)

    def test_single_sample(self):
        stats = RunStats.of([4.0])
        assert stats.median == 4.0
        assert stats.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RunStats.of([])

    def test_dict_roundtrip(self):
        stats = RunStats.of([1.0, 2.0])
        payload = stats.to_dict()
        assert payload["median"] == pytest.approx(1.5)
        assert RunStats.from_dict(payload) == stats


class TestWarmupAndRepeats:
    def test_warmup_runs_are_excluded(self):
        clock = FakeClock()
        # Cold runs are artificially slow; only the last three count.
        bench = make_fake_benchmark(clock, [50.0, 40.0, 1.0, 2.0, 3.0])
        record = run_benchmark(bench, InputSize.SQCIF, 0,
                               warmup=2, repeats=3, clock=clock)
        assert record.stats is not None
        assert record.stats.warmup == 2
        assert record.stats.total.samples == (1.0, 2.0, 3.0)
        assert record.total_seconds == pytest.approx(2.0)  # median

    def test_repeat_aggregation_per_kernel(self):
        clock = FakeClock()
        bench = make_fake_benchmark(clock, [1.0, 2.0, 3.0])
        record = run_benchmark(bench, InputSize.SQCIF, 0,
                               repeats=3, clock=clock)
        kernel = record.stats.kernels["K"]
        assert kernel.min == 1.0
        assert kernel.median == 2.0
        assert kernel.mean == pytest.approx(2.0)
        assert kernel.stddev == pytest.approx(1.0)
        assert record.kernel_seconds["K"] == pytest.approx(2.0)
        assert record.kernel_calls["K"] == 1

    def test_single_shot_matches_legacy_shape(self):
        clock = FakeClock()
        bench = make_fake_benchmark(clock, [2.5])
        record = run_benchmark(bench, InputSize.SQCIF, 0, clock=clock)
        assert record.total_seconds == pytest.approx(2.5)
        assert record.kernel_seconds == {"K": pytest.approx(2.5)}
        assert record.stats.repeats == 1
        assert record.stats.total.stddev == 0.0

    def test_invalid_arguments(self):
        clock = FakeClock()
        bench = make_fake_benchmark(clock, [1.0])
        with pytest.raises(ValueError):
            run_benchmark(bench, InputSize.SQCIF, 0, repeats=0)
        with pytest.raises(ValueError):
            run_benchmark(bench, InputSize.SQCIF, 0, warmup=-1)

    def test_representative_roundtrip(self):
        stats = AggregatedRun(
            benchmark="demo",
            size=InputSize.QCIF,
            variant=1,
            warmup=1,
            total=RunStats.of([1.0, 3.0]),
            kernels={"A": RunStats.of([0.5, 1.5])},
            kernel_calls={"A": 2},
        )
        run = stats.representative()
        assert run.total_seconds == pytest.approx(2.0)
        assert run.kernel_seconds["A"] == pytest.approx(1.0)
        assert run.stats is stats


class TestParallelJobs:
    def test_jobs_match_serial_grid(self):
        serial = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                           variants=[0, 1], jobs=1)
        parallel = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                             variants=[0, 1], jobs=2)
        keys = lambda res: [(r.benchmark, r.size, r.variant)
                            for r in res.runs]
        assert keys(parallel) == keys(serial)
        for left, right in zip(serial.runs, parallel.runs):
            assert left.kernel_calls == right.kernel_calls
            assert set(left.kernel_seconds) == set(right.kernel_seconds)

    def test_jobs_with_repeats_carry_stats(self):
        result = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                           variants=[0], repeats=2, jobs=2)
        (run,) = result.runs
        assert run.stats is not None
        assert run.stats.repeats == 2
        assert len(run.stats.total.samples) == 2


class TestOccupancyNormalization:
    def test_overattribution_rescales_to_100(self):
        # Profiler overhead can make attributed time exceed wall time;
        # the shares must still close the 100% budget exactly.
        run = BenchmarkRun(
            benchmark="demo",
            size=InputSize.SQCIF,
            variant=0,
            total_seconds=1.0,
            kernel_seconds={"A": 0.9, "B": 0.6},
        )
        shares = run.occupancy()
        assert sum(shares.values()) == pytest.approx(100.0, abs=1e-9)
        assert shares[NON_KERNEL_WORK] == 0.0
        assert shares["A"] == pytest.approx(60.0)
        assert shares["B"] == pytest.approx(40.0)

    def test_normal_attribution_unchanged(self):
        run = BenchmarkRun(
            benchmark="demo",
            size=InputSize.SQCIF,
            variant=0,
            total_seconds=10.0,
            kernel_seconds={"A": 4.0},
        )
        shares = run.occupancy()
        assert shares["A"] == pytest.approx(40.0)
        assert shares[NON_KERNEL_WORK] == pytest.approx(60.0)
        assert sum(shares.values()) == pytest.approx(100.0, abs=1e-9)

    def test_full_suite_runs_close_budget(self):
        result = run_suite(["disparity", "svm"], sizes=[InputSize.SQCIF],
                           variants=[0])
        for run in result.runs:
            assert sum(run.occupancy().values()) == \
                pytest.approx(100.0, abs=1e-9)


class TestScalingFallback:
    def _result_without_sqcif(self):
        result = SuiteResult()
        for size, total in ((InputSize.QCIF, 2.0), (InputSize.CIF, 8.0)):
            result.runs.append(
                BenchmarkRun(
                    benchmark="demo",
                    size=size,
                    variant=0,
                    total_seconds=total,
                )
            )
        return result

    def test_normalizes_to_smallest_present_with_warning(self):
        result = self._result_without_sqcif()
        with pytest.warns(RuntimeWarning, match="smallest size present"):
            series = scaling_series(result, "demo")
        assert [p.relative_size for p in series] == [2, 4]
        assert series[0].relative_time == pytest.approx(1.0)
        assert series[1].relative_time == pytest.approx(4.0)

    def test_empty_result_still_empty(self):
        assert scaling_series(SuiteResult(), "demo") == []

    def test_zero_base_median_warns_instead_of_silent_empty(self):
        result = SuiteResult()
        for size, total in ((InputSize.SQCIF, 0.0), (InputSize.QCIF, 2.0)):
            result.runs.append(
                BenchmarkRun(
                    benchmark="demo",
                    size=size,
                    variant=0,
                    total_seconds=total,
                )
            )
        with pytest.warns(RuntimeWarning, match="cannot normalize"):
            series = scaling_series(result, "demo")
        assert series == []


class TestNullProfilerSingleton:
    def test_shared_instance(self):
        assert ensure_profiler(None) is ensure_profiler(None)

    def test_mutating_paths_are_inert(self):
        shared = ensure_profiler(None)
        with shared.run():
            with shared.kernel("A"):
                pass
        shared.start()
        assert shared.stop() == 0.0
        shared.reset()
        assert shared.kernel_seconds == {}
        assert shared.total_seconds == 0.0
        # A second user sees pristine state.
        assert ensure_profiler(None).kernel_seconds == {}

    def test_real_profiler_passthrough(self):
        from repro.core.profiler import KernelProfiler

        profiler = KernelProfiler()
        assert ensure_profiler(profiler) is profiler
        assert not isinstance(ensure_profiler(profiler), NullProfiler)


class TestCliSizes:
    def test_bad_size_exits_2_cleanly(self, capsys):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["run", "disparity", "--sizes", "cif", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid size 'bogus'" in err
        assert "SQCIF, QCIF, CIF" in err
        assert "KeyError" not in err

    def test_sizes_case_insensitive(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["run", "disparity", "--sizes", "sqcif",
                         "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "disparity" in out
        assert "±" in out  # repeat stddev shown in the summary
