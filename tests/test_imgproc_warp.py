"""Tests for the geometric warping module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imgproc.warp import (
    rotation_matrix,
    warp_affine,
    warp_homography,
    warp_rotate,
    warp_translation,
)


def make_image(shape=(24, 32), seed=0):
    from repro.imgproc.filters import gaussian_blur

    rng = np.random.default_rng(seed)
    return gaussian_blur(rng.random(shape), 1.0)


class TestAffine:
    def test_identity(self):
        img = make_image()
        out = warp_affine(img, np.eye(2), np.zeros(2))
        assert np.allclose(out, img)

    def test_integer_translation(self):
        img = make_image()
        out = warp_translation(img, 3.0, 5.0)
        assert np.allclose(out[3:, 5:], img[:-3, :-5], atol=1e-12)

    def test_fill_outside(self):
        img = make_image()
        out = warp_translation(img, 10.0, 0.0, fill=-1.0)
        assert (out[:10] == -1.0).all()

    def test_fractional_translation_roundtrip(self):
        img = make_image()
        forward = warp_translation(img, 0.5, 0.5)
        back = warp_translation(forward, -0.5, -0.5)
        interior = (slice(4, -4), slice(4, -4))
        # Two bilinear passes blur slightly; bound the residual loosely.
        assert np.abs(back[interior] - img[interior]).max() < 0.08

    def test_out_shape(self):
        img = make_image()
        out = warp_affine(img, np.eye(2), np.zeros(2), out_shape=(10, 12))
        assert out.shape == (10, 12)
        assert np.allclose(out, img[:10, :12])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            warp_affine(np.ones(5), np.eye(2), np.zeros(2))
        with pytest.raises(ValueError):
            warp_affine(np.ones((4, 4)), np.eye(3), np.zeros(2))


class TestRotation:
    def test_matrix_orthogonal(self):
        rot = rotation_matrix(0.7)
        assert np.allclose(rot @ rot.T, np.eye(2), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_quarter_turn_square(self):
        img = np.zeros((21, 21))
        img[8:13, 6:9] = 1.0  # off-centre block
        out = warp_rotate(img, np.pi / 2)
        # The block's mass is preserved (up to resampling).
        assert out.sum() == pytest.approx(img.sum(), rel=0.2)
        # And it moved away from its original spot.
        assert out[8:13, 6:9].sum() < 0.5 * img[8:13, 6:9].sum()

    def test_full_turn_identity(self):
        img = make_image((21, 21))
        out = warp_rotate(warp_rotate(img, np.pi), np.pi)
        interior = (slice(5, -5), slice(5, -5))
        assert np.abs(out[interior] - img[interior]).max() < 0.08

    @settings(max_examples=10, deadline=None)
    @given(st.floats(-3.0, 3.0))
    def test_rotation_preserves_center(self, angle):
        img = make_image((25, 25))
        out = warp_rotate(img, angle)
        assert out[12, 12] == pytest.approx(img[12, 12], abs=1e-6)


class TestHomography:
    def test_identity(self):
        img = make_image()
        assert np.allclose(warp_homography(img, np.eye(3)), img)

    def test_translation_homography(self):
        img = make_image()
        h = np.eye(3)
        h[0, 2] = -4.0  # x_src = x_dst - 4 -> content shifts right
        out = warp_homography(img, h)
        assert np.allclose(out[:, 4:], img[:, :-4], atol=1e-12)

    def test_matches_stitch_convention(self):
        from repro.stitch import apply_homography

        img = make_image()
        h = np.eye(3)
        h[0, 2] = 2.0
        h[1, 2] = 3.0
        # apply_homography maps source points to destination points with
        # the same h; warp uses inverse mapping, so warping with h places
        # img's pixel p at apply_homography(h^-1, p).
        mapped = apply_homography(np.linalg.inv(h), np.array([[5.0, 7.0]]))
        out = warp_homography(img, h)
        r, c = int(round(mapped[0, 0])), int(round(mapped[0, 1]))
        assert out[r, c] == pytest.approx(img[5, 7], abs=1e-9)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            warp_homography(np.ones((4, 4)), np.eye(2))
