"""Golden-structure tests for the self-contained HTML report."""

import json
import re

import pytest

from repro.core.htmlreport import SECTION_IDS, render_html_report
from repro.core.types import NON_KERNEL_WORK, BenchmarkRun, InputSize, \
    SuiteResult


def synthetic_result():
    """A fully populated result with no live measurement involved."""
    run = BenchmarkRun(
        benchmark="disparity",
        size=InputSize.SQCIF,
        variant=0,
        total_seconds=0.010,
        kernel_seconds={"SSD": 0.004, "Sort & <Friends>": 0.003},
        kernel_calls={"SSD": 16, "Sort & <Friends>": 16},
        outputs={},
    )
    run.metrics = {
        "kernels": {
            "disparity.ssd": {
                "calls": 16,
                "flops": 2.0e6,
                "bytes": 3.0e6,
                "seconds": 0.004,
                "gflops_per_s": 0.5,
                "gbytes_per_s": 0.75,
                "arithmetic_intensity": 0.667,
            }
        }
    }
    run.sampling = {
        "interval_seconds": 0.001,
        "samples": 50,
        "shares": {"SSD": 42.0, "Sort & <Friends>": 31.0,
                   NON_KERNEL_WORK: 27.0},
        "kernel_seconds": {"SSD": 0.021, "Sort & <Friends>": 0.0155,
                           NON_KERNEL_WORK: 0.0135},
        "observable": ["SSD", "Sort & <Friends>"],
        "folded": {},
        "folded_dropped": 0,
        "non_kernel_top": [["numpy:<pad & trim>", 0.005]],
    }
    result = SuiteResult()
    result.runs.append(run)
    result.manifest = {
        "schema": "sdvbs-repro/manifest/v1",
        "python": "3.x",
        "measurement": {"repeats": 3, "backend": "fast"},
        "instrumentation": {"seconds_per_probe": 2e-06},
    }
    return result


class TestGoldenStructure:
    def test_required_sections_present(self):
        html = render_html_report(synthetic_result())
        for section_id in SECTION_IDS:
            assert f'id="{section_id}"' in html, section_id

    def test_zero_external_references(self):
        html = render_html_report(synthetic_result())
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" not in html.lower()
        assert "<link" not in html.lower()
        assert "url(" not in html.lower()

    def test_dynamic_text_is_escaped(self):
        html = render_html_report(synthetic_result())
        assert "Sort & <Friends>" not in html
        assert "Sort &amp; &lt;Friends&gt;" in html
        assert "numpy:&lt;pad &amp; trim&gt;" in html

    def test_occupancy_stack_rendered(self):
        html = render_html_report(synthetic_result())
        assert html.count('class="seg"') >= 3  # SSD, Sort, residual
        assert 'class="legend"' in html
        assert "SQCIF variant 0" in html

    def test_roofline_point_and_axes(self):
        html = render_html_report(synthetic_result())
        assert "<svg" in html and "<circle" in html
        assert "arithmetic intensity (flop/byte)" in html
        assert "achieved GFLOP/s" in html

    def test_agreement_table_pass_verdicts(self):
        html = render_html_report(synthetic_result())
        assert "agree" in html
        assert "PASS" in html
        # NonKernelWork residual: 27 instrumented-side (here derived)
        assert NON_KERNEL_WORK in html

    def test_agreement_gate_failure_marked(self):
        result = synthetic_result()
        result.runs[0].sampling["shares"]["SSD"] = 90.0
        html = render_html_report(result)
        assert "DIVERGES" in html and "FAIL" in html

    def test_dark_mode_tokens_present(self):
        html = render_html_report(synthetic_result())
        assert "prefers-color-scheme: dark" in html
        assert '[data-theme="dark"]' in html
        assert "--surface" in html and "--muted" in html

    def test_empty_result_renders_placeholders(self):
        html = render_html_report(SuiteResult())
        for section_id in SECTION_IDS:
            assert f'id="{section_id}"' in html
        assert "No runs in this export" in html
        assert "No trace recorded" in html

    def test_flamediff_placeholder_without_diff(self):
        html = render_html_report(synthetic_result())
        assert 'id="flamediff"' in html
        assert "sdvbs profile diff" in html

    def test_flamediff_section_populated(self):
        from repro.core.flamediff import diff_profiles
        from repro.core.sampling import SampledProfile

        base = SampledProfile(interval=0.001, samples=10,
                              folded={("main", "ssd"): 0.004},
                              kernel_seconds={"SSD": 0.004},
                              observable=("SSD",))
        cand = SampledProfile(interval=0.001, samples=10,
                              folded={("main", "ssd"): 0.012},
                              kernel_seconds={"SSD": 0.012},
                              observable=("SSD",))
        diff = diff_profiles(base, cand, baseline_label="aaa",
                             candidate_label="bbb")
        html = render_html_report(synthetic_result(), diff=diff)
        assert "aaa" in html and "bbb" in html
        assert "SSD" in html
        assert 'class="diffbar"' in html
        assert "delta-pos" in html
        assert "Red grew" in html

    def test_render_diff_html_standalone(self):
        from repro.core.flamediff import diff_profiles
        from repro.core.htmlreport import render_diff_html
        from repro.core.sampling import SampledProfile

        base = SampledProfile(interval=0.001, samples=10,
                              folded={("main", "ssd"): 0.004},
                              kernel_seconds={"SSD": 0.004},
                              observable=("SSD",))
        cand = SampledProfile(interval=0.001, samples=10,
                              folded={("main", "ssd"): 0.002},
                              kernel_seconds={"SSD": 0.002},
                              observable=("SSD",))
        diff = diff_profiles(base, cand)
        html = render_diff_html(diff, title="my <diff> & title")
        assert 'id="flamediff"' in html
        assert "my &lt;diff&gt; &amp; title" in html
        assert "delta-neg" in html
        assert "http://" not in html and "<script" not in html.lower()

    def test_truncation_note_rendered_when_stacks_dropped(self):
        result = synthetic_result()
        html = render_html_report(result)
        assert "distinct stack(s) were dropped" not in html
        result.runs[0].sampling["stacks_truncated"] = 12
        html = render_html_report(result)
        assert "12 distinct stack(s) were dropped" in html

    def test_trace_section_from_spans(self):
        from repro.core import TraceRecorder, run_benchmark
        from repro.core.registry import get_benchmark

        with TraceRecorder() as recorder:
            run_benchmark(get_benchmark("disparity"), InputSize.SQCIF,
                          recorder=recorder)
        html = render_html_report(synthetic_result(),
                                  spans=recorder.spans)
        assert "slowest kernel invocations" in html
        assert re.search(r"<td>SSD</td>", html)

    def test_title_is_escaped(self):
        html = render_html_report(SuiteResult(), title="a <b> & c")
        assert "<title>a &lt;b&gt; &amp; c</title>" in html


class TestCliReport:
    def test_report_from_export(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.core.export import result_to_json

        export = tmp_path / "run.json"
        export.write_text(result_to_json(synthetic_result()))
        out = tmp_path / "report.html"
        assert cli_main(["report", "--from", str(export),
                         "--out", str(out)]) == 0
        html = out.read_text()
        for section_id in SECTION_IDS:
            assert f'id="{section_id}"' in html
        assert "https://" not in html and "http://" not in html
        assert "No trace recorded" in html  # exports carry no spans
        assert "report.html" in capsys.readouterr().out

    def test_report_from_missing_file(self, tmp_path):
        from repro.cli import main as cli_main

        assert cli_main(["report", "--from",
                         str(tmp_path / "nope.json"),
                         "--out", str(tmp_path / "r.html")]) == 2

    def test_report_live_single_cell(self, tmp_path):
        from repro.cli import main as cli_main

        out = tmp_path / "report.html"
        export = tmp_path / "run.json"
        assert cli_main(["report", "disparity", "--sizes", "sqcif",
                         "--repeats", "2", "--warmup", "0",
                         "--out", str(out),
                         "--json", str(export)]) == 0
        html = out.read_text()
        for section_id in SECTION_IDS:
            assert f'id="{section_id}"' in html
        assert "https://" not in html and "http://" not in html
        # Live mode has a trace, a sampler and a stamped manifest.
        assert "slowest kernel invocations" in html
        payload = json.loads(export.read_text())
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        assert "instrumentation" in payload["manifest"]
        assert payload["runs"][0]["sampling"] is not None

    def test_report_unknown_slug(self, tmp_path):
        from repro.cli import main as cli_main

        assert cli_main(["report", "nope", "--sizes", "sqcif",
                         "--out", str(tmp_path / "r.html")]) == 2


class TestHistoryFormatting:
    def test_epoch_floats_become_iso(self):
        from repro.core.history import format_created

        formatted = format_created("1754300000.5")
        assert re.match(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}", formatted)

    def test_iso_passthrough(self):
        from repro.core.history import format_created

        stamp = "2026-08-06T12:00:00+0000"
        assert format_created(stamp) == stamp

    def test_history_list_filters(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.core.export import result_to_json
        from repro.core.types import BenchmarkRun

        result = SuiteResult()
        result.runs.append(BenchmarkRun(
            benchmark="disparity", size=InputSize.SQCIF, variant=0,
            total_seconds=0.01, kernel_seconds={"SSD": 0.004},
            kernel_calls={"SSD": 16}, outputs={}))
        export = tmp_path / "run.json"
        export.write_text(result_to_json(result))
        db = tmp_path / "h.jsonl"
        assert cli_main(["history", "record", str(export),
                         "--db", str(db), "--commit", "abc123"]) == 0
        capsys.readouterr()
        assert cli_main(["history", "list", "--db", str(db),
                         "--benchmark", "disparity",
                         "--size", "sqcif"]) == 0
        out = capsys.readouterr().out
        assert "disparity" in out
        # The created column is ISO-8601, not an epoch float.
        assert re.search(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}", out)
        assert cli_main(["history", "list", "--db", str(db),
                         "--benchmark", "tracking"]) == 0
        assert "no entries match" in capsys.readouterr().out
