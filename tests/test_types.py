"""Unit tests for core value types."""

import pytest

from repro.core.types import (
    NON_KERNEL_WORK,
    VARIANTS_PER_SIZE,
    BenchmarkRun,
    InputSize,
    KernelSample,
    SuiteResult,
)


class TestInputSize:
    def test_dimensions_match_paper(self):
        assert InputSize.SQCIF.shape == (96, 128)
        assert InputSize.QCIF.shape == (144, 176)
        assert InputSize.CIF.shape == (288, 352)

    def test_vga_extends_the_scale(self):
        # VGA is the streaming extension beyond the paper's trio: 25x
        # the pixels of SQCIF, consistent with the relative labels.
        assert InputSize.VGA.shape == (480, 640)
        assert InputSize.VGA.pixels // InputSize.SQCIF.pixels == 25

    def test_relative_labels(self):
        assert [s.relative for s in InputSize] == [1, 2, 4, 25]

    def test_pixel_doubling(self):
        # "QCIF is roughly 2x larger than SQCIF, and CIF is roughly 2x
        # larger than QCIF" (paper, section III-A).
        ratio1 = InputSize.QCIF.pixels / InputSize.SQCIF.pixels
        ratio2 = InputSize.CIF.pixels / InputSize.QCIF.pixels
        assert 1.8 < ratio1 < 2.3
        assert 3.5 < ratio2 < 4.5  # CIF doubles both dimensions of QCIF

    def test_five_variants(self):
        assert VARIANTS_PER_SIZE == 5


class TestBenchmarkRun:
    def _run(self, total=10.0, kernels=None):
        return BenchmarkRun(
            benchmark="demo",
            size=InputSize.SQCIF,
            variant=0,
            total_seconds=total,
            kernel_seconds=kernels or {},
        )

    def test_occupancy_sums_to_100(self):
        run = self._run(kernels={"A": 4.0, "B": 5.0})
        shares = run.occupancy()
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["A"] == pytest.approx(40.0)
        assert shares[NON_KERNEL_WORK] == pytest.approx(10.0)

    def test_occupancy_zero_total(self):
        run = self._run(total=0.0)
        assert run.occupancy() == {NON_KERNEL_WORK: 100.0}

    def test_overattribution_clamps_residual(self):
        run = self._run(total=1.0, kernels={"A": 1.2})
        assert run.occupancy()[NON_KERNEL_WORK] == 0.0


class TestKernelSample:
    def test_merge(self):
        a = KernelSample("k", seconds=1.0, calls=2)
        a.merge(KernelSample("k", seconds=0.5, calls=1))
        assert a.seconds == pytest.approx(1.5)
        assert a.calls == 3

    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            KernelSample("a").merge(KernelSample("b"))


class TestSuiteResult:
    def _result(self):
        result = SuiteResult()
        for variant, total in ((0, 1.0), (1, 3.0)):
            result.runs.append(
                BenchmarkRun(
                    benchmark="demo",
                    size=InputSize.SQCIF,
                    variant=variant,
                    total_seconds=total,
                    kernel_seconds={"A": total / 2.0},
                )
            )
        return result

    def test_mean_total(self):
        assert self._result().mean_total("demo", InputSize.SQCIF) == \
            pytest.approx(2.0)

    def test_mean_total_missing(self):
        assert self._result().mean_total("demo", InputSize.CIF) is None
        assert self._result().mean_total("ghost", InputSize.SQCIF) is None

    def test_mean_occupancy(self):
        shares = self._result().mean_occupancy("demo", InputSize.SQCIF)
        assert shares["A"] == pytest.approx(50.0)
        assert shares[NON_KERNEL_WORK] == pytest.approx(50.0)

    def test_benchmarks_preserves_order(self):
        result = self._result()
        result.runs.append(
            BenchmarkRun(
                benchmark="other",
                size=InputSize.SQCIF,
                variant=0,
                total_seconds=1.0,
            )
        )
        assert result.benchmarks() == ["demo", "other"]

    def test_for_benchmark(self):
        assert len(self._result().for_benchmark("demo")) == 2
        assert self._result().for_benchmark("ghost") == []
