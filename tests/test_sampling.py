"""Tests for the statistical sampling profiler and its exporters.

The sampler is driven deterministically: fake frame chains stand in for
live stacks, a scripted clock supplies the time weights, and the frames
provider is injected so no background thread or wall clock is involved
except in the one end-to-end smoke test.
"""

import json

import pytest

from repro.core.registry import get_benchmark
from repro.core.runner import run_benchmark
from repro.core.sampling import (
    DEFAULT_INTERVAL,
    SampledProfile,
    StackSampler,
    cross_check,
    escape_frame,
    kernel_frame_map,
    observable_kernels,
    parse_collapsed,
    speedscope_dict,
    to_collapsed,
    unescape_frame,
    walk_stack,
)
from repro.core.types import NON_KERNEL_WORK, InputSize


class FakeClock:
    """Deterministic clock: each call returns the current scripted time."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FakeCode:
    def __init__(self, name, filename):
        self.co_name = name
        self.co_filename = filename


class FakeFrame:
    """Minimal stand-in for a live interpreter frame."""

    def __init__(self, module, function, filename, back=None):
        self.f_code = FakeCode(function, filename)
        self.f_globals = {"__name__": module}
        self.f_back = back


def chain(*frames):
    """Build a frame chain root-first; returns the leaf frame."""
    leaf = None
    for module, function, filename in frames:
        leaf = FakeFrame(module, function, filename, back=leaf)
    return leaf


def make_sampler(frames_by_tid, clock=None, frame_map=None,
                 interval=0.001, target=7):
    return StackSampler(
        interval=interval,
        frame_map=frame_map or {},
        frames_provider=lambda: frames_by_tid,
        target_thread_id=target,
        clock=clock or FakeClock(),
    )


APP_STACK = (
    ("app", "main", "/src/app.py"),
    ("app", "outer", "/src/app.py"),
    ("kernels", "ssd", "/src/kernels.py"),
)


class TestWalkStack:
    def test_root_first_order(self):
        leaf = chain(*APP_STACK)
        stack = walk_stack(leaf)
        assert stack == APP_STACK

    def test_missing_module_name(self):
        frame = FakeFrame("x", "f", "/x.py")
        frame.f_globals = {}
        assert walk_stack(frame)[0] == ("?", "f", "/x.py")


class TestSampledProfile:
    def test_attribution_leaf_first(self):
        profile = SampledProfile(
            frame_map={("/src/kernels.py", "ssd"): "SSD"})
        assert profile.attribute(APP_STACK) == "SSD"

    def test_attribution_skips_none_mapping(self):
        # A known-but-uninstrumented frame must not stop the walk.
        frame_map = {
            ("/src/kernels.py", "ssd"): None,
            ("/src/app.py", "outer"): "Outer",
        }
        profile = SampledProfile(frame_map=frame_map)
        assert profile.attribute(APP_STACK) == "Outer"

    def test_unmapped_stack_is_non_kernel(self):
        profile = SampledProfile(frame_map={})
        profile.add(APP_STACK)
        assert profile.kernel_seconds == {
            NON_KERNEL_WORK: pytest.approx(DEFAULT_INTERVAL)}
        assert profile.non_kernel_top() == [
            ("kernels:ssd", pytest.approx(DEFAULT_INTERVAL))]

    def test_weighted_fold_and_shares(self):
        profile = SampledProfile(
            interval=0.001,
            frame_map={("/src/kernels.py", "ssd"): "SSD"})
        profile.add(APP_STACK, 0.003)
        profile.add(APP_STACK, 0.001)
        profile.add(APP_STACK[:2], 0.004)  # no kernel frame
        assert profile.samples == 3
        assert profile.sampled_seconds == pytest.approx(0.008)
        shares = profile.shares()
        assert shares["SSD"] == pytest.approx(50.0)
        assert shares[NON_KERNEL_WORK] == pytest.approx(50.0)
        labels = tuple("%s:%s" % (f[0], f[1]) for f in APP_STACK)
        assert profile.folded[labels] == pytest.approx(0.004)

    def test_empty_profile_has_no_shares(self):
        assert SampledProfile().shares() == {}

    def test_payload_round_trip(self):
        profile = SampledProfile(
            interval=0.002,
            frame_map={("/src/kernels.py", "ssd"): "SSD"})
        profile.add(APP_STACK, 0.01)
        profile.add(APP_STACK[:2], 0.006)
        payload = json.loads(json.dumps(profile.to_dict()))
        restored = SampledProfile.from_dict(payload)
        assert restored.samples == 2
        assert restored.shares() == pytest.approx(profile.shares())
        assert restored.observable_kernels() == ["SSD"]
        assert restored.folded == profile.folded
        assert restored.non_kernel_top() == [
            ("app:outer", pytest.approx(0.006))]

    def test_to_dict_caps_stacks(self):
        profile = SampledProfile()
        for i in range(20):
            profile.add((("m", f"f{i}", "/m.py"),), 0.001)
        payload = profile.to_dict(max_stacks=5)
        assert len(payload["folded"]) == 5
        assert payload["folded_dropped"] == 15

    def test_stacks_truncated_accumulates_across_round_trips(self):
        profile = SampledProfile()
        for i in range(20):
            profile.add((("m", f"f{i}", "/m.py"),), 0.001)
        first = profile.to_dict(max_stacks=10)
        assert first["stacks_truncated"] == 10
        restored = SampledProfile.from_dict(first)
        assert restored.stacks_truncated == 10
        # A tighter second export adds its own cut to the running count.
        second = restored.to_dict(max_stacks=5)
        assert second["folded_dropped"] == 5
        assert second["stacks_truncated"] == 15
        assert SampledProfile.from_dict(second).stacks_truncated == 15

    def test_stacks_truncated_zero_when_uncapped(self):
        profile = SampledProfile()
        profile.add((("m", "f", "/m.py"),), 0.001)
        payload = profile.to_dict()
        assert payload["stacks_truncated"] == 0
        assert payload["folded_dropped"] == 0

    def test_legacy_payload_falls_back_to_folded_dropped(self):
        profile = SampledProfile()
        for i in range(8):
            profile.add((("m", f"f{i}", "/m.py"),), 0.001)
        payload = profile.to_dict(max_stacks=4)
        del payload["stacks_truncated"]  # pre-v6 export shape
        assert SampledProfile.from_dict(payload).stacks_truncated == 4

    def test_merge_sums_truncation_counts(self):
        left = SampledProfile(observable=())
        left.stacks_truncated = 3
        right = SampledProfile(observable=())
        right.stacks_truncated = 4
        merged = SampledProfile.merged([left, right])
        assert merged.stacks_truncated == 7


class TestStackSampler:
    def test_deterministic_sample_counts(self):
        clock = FakeClock()
        leaf = chain(*APP_STACK)
        sampler = make_sampler({7: leaf}, clock=clock,
                               frame_map={("/src/kernels.py", "ssd"): "SSD"})
        for _ in range(10):
            clock.advance(0.001)
            assert sampler.sample_once()
        assert sampler.profile.samples == 10
        # First sample carries one nominal interval, the rest their
        # measured 1 ms windows.
        assert sampler.profile.sampled_seconds == pytest.approx(0.010)
        assert sampler.profile.shares() == {"SSD": pytest.approx(100.0)}

    def test_time_weighting_charges_delayed_sample(self):
        # A 9 ms gap (GIL held by a C call) lands on the frame that was
        # running, and carries the full window.
        clock = FakeClock()
        leaf = chain(*APP_STACK)
        sampler = make_sampler({7: leaf}, clock=clock,
                               frame_map={("/src/kernels.py", "ssd"): "SSD"})
        clock.advance(0.001)
        sampler.sample_once()
        clock.advance(0.009)
        sampler.sample_once()
        assert sampler.profile.sampled_seconds == pytest.approx(0.010)

    def test_missing_target_thread(self):
        sampler = make_sampler({})
        assert not sampler.sample_once()
        assert sampler.profile.samples == 0

    def test_registry_name_mapping(self):
        frame_map = kernel_frame_map("disparity")
        leaf = chain(
            ("repro.disparity.algorithm", "dense_disparity",
             next(f for (f, n) in frame_map if n == "window_sums")),
        )
        # Use the real registered file/function names for a live check.
        observable = observable_kernels(frame_map)
        assert {"SSD", "IntegralImage", "Correlation", "Sort"} <= \
            set(observable)
        clock = FakeClock()
        sampler = make_sampler({7: leaf}, clock=clock, frame_map=frame_map)
        clock.advance(0.001)
        sampler.sample_once()
        # dense_disparity itself is not a kernel frame.
        assert sampler.profile.kernel_seconds.keys() == {NON_KERNEL_WORK}

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            StackSampler(interval=0.0)

    def test_live_thread_smoke(self):
        # Real background thread on this thread's stack; just asserts
        # the lifecycle works and samples arrive.
        sampler = StackSampler(interval=0.0005)
        with sampler:
            total = 0.0
            for i in range(200_000):
                total += i * 0.5
        assert total > 0
        assert sampler.profile.samples >= 1

    def test_double_start_rejected(self):
        sampler = StackSampler(interval=0.01)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()
        sampler.stop()  # idempotent


class TestCollapsedFormat:
    def test_escape_round_trip(self):
        for label in ("a b;c", "100% done", "%3B literal", "plain",
                      "odd %20 input", ";;  %%"):
            assert unescape_frame(escape_frame(label)) == label

    def test_collapsed_round_trip_with_hostile_names(self):
        profile = SampledProfile()
        hostile = (
            ("mod", "f with space", "/m.py"),
            ("mod", "g;semi", "/m.py"),
            ("mod", "h%pct", "/m.py"),
        )
        profile.add(hostile, 0.002)
        profile.add(APP_STACK, 0.001)
        text = to_collapsed(profile)
        folded = parse_collapsed(text)
        labels = tuple("%s:%s" % (f[0], f[1]) for f in hostile)
        assert folded[labels] == 2000  # integer microseconds
        plain = tuple("%s:%s" % (f[0], f[1]) for f in APP_STACK)
        assert folded[plain] == 1000

    def test_collapsed_lines_are_sorted_and_terminated(self):
        profile = SampledProfile()
        profile.add((("b", "b", "/b.py"),), 0.001)
        profile.add((("a", "a", "/a.py"),), 0.001)
        text = to_collapsed(profile)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines == sorted(lines)

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_collapsed("justonetoken\n")

    def test_empty_profile_collapses_to_empty(self):
        assert to_collapsed(SampledProfile()) == ""
        assert parse_collapsed("") == {}


class TestSpeedscope:
    def test_shape_and_weights(self):
        profile = SampledProfile(
            interval=0.001,
            frame_map={("/src/kernels.py", "ssd"): "SSD"})
        profile.add(APP_STACK, 0.003)
        profile.add(APP_STACK[:2], 0.001)
        payload = speedscope_dict(profile, name="unit")
        assert payload["name"] == "unit"
        assert set(payload) >= {"$schema", "shared", "profiles"}
        prof = payload["profiles"][0]
        assert prof["type"] == "sampled"
        assert prof["unit"] == "seconds"
        assert len(prof["samples"]) == len(prof["weights"]) == 2
        assert sum(prof["weights"]) == pytest.approx(0.004)
        assert prof["endValue"] == pytest.approx(0.004)
        frames = payload["shared"]["frames"]
        for sample in prof["samples"]:
            for index in sample:
                assert 0 <= index < len(frames)


class TestCrossCheck:
    def test_agreeing_shares_pass(self):
        check = cross_check(
            {"SSD": 40.0, "Sort": 40.0, NON_KERNEL_WORK: 20.0},
            {"SSD": 42.0, "Sort": 38.0, NON_KERNEL_WORK: 20.0},
            observable=["SSD", "Sort"],
            samples=100,
        )
        assert check.ok
        assert [row.kernel for row in check.rows] == \
            ["SSD", "Sort", NON_KERNEL_WORK]

    def test_divergence_fails_gate(self):
        check = cross_check(
            {"SSD": 50.0, NON_KERNEL_WORK: 50.0},
            {"SSD": 30.0, NON_KERNEL_WORK: 70.0},
            observable=["SSD"],
        )
        assert not check.ok
        assert {row.kernel for row in check.failures()} == \
            {"SSD", NON_KERNEL_WORK}

    def test_small_shares_not_gated(self):
        check = cross_check(
            {"Tiny": 4.0, "Big": 56.0, NON_KERNEL_WORK: 40.0},
            {"Tiny": 0.0, "Big": 57.0, NON_KERNEL_WORK: 43.0},
            observable=["Tiny", "Big"],
        )
        # Tiny misses by 4 points but holds <10% on both sides.
        assert check.ok
        assert len(check.gated_rows()) == 2

    def test_unobservable_kernel_folds_into_residual(self):
        check = cross_check(
            {"Inline": 30.0, "SSD": 50.0, NON_KERNEL_WORK: 20.0},
            {"SSD": 52.0, NON_KERNEL_WORK: 48.0},
            observable=["SSD"],
        )
        inline = next(r for r in check.rows if r.kernel == "Inline")
        assert inline.sampled is None
        assert inline.delta is None
        residual = next(r for r in check.rows
                        if r.kernel == NON_KERNEL_WORK)
        assert residual.instrumented == pytest.approx(50.0)
        assert residual.sampled == pytest.approx(48.0)
        assert check.ok

    def test_stray_sampled_label_counts_in_residual(self):
        check = cross_check(
            {"SSD": 80.0, NON_KERNEL_WORK: 20.0},
            {"SSD": 80.0, "Ghost": 5.0, NON_KERNEL_WORK: 15.0},
            observable=["SSD", "Ghost"],
        )
        residual = next(r for r in check.rows
                        if r.kernel == NON_KERNEL_WORK)
        assert residual.sampled == pytest.approx(20.0)


class TestFrameMaps:
    def test_every_app_frame_map_builds(self):
        from repro.core import all_benchmarks
        from repro.core.backend import load_all_kernels

        load_all_kernels()
        for benchmark in all_benchmarks():
            frame_map = kernel_frame_map(benchmark.slug)
            for label in observable_kernels(frame_map):
                assert label in benchmark.kernel_names(), (
                    benchmark.slug, label)

    def test_disparity_declares_factored_kernels(self):
        from repro.core.backend import load_all_kernels

        load_all_kernels()
        observable = observable_kernels(kernel_frame_map("disparity"))
        assert observable == ["Correlation", "IntegralImage", "SSD", "Sort"]


class TestRunnerIntegration:
    def test_sampling_payload_rides_export(self):
        from repro.core.export import result_from_json, result_to_json
        from repro.core.types import SuiteResult

        sampler = StackSampler(interval=0.0005,
                               frame_map=kernel_frame_map("disparity"))
        run = run_benchmark(get_benchmark("disparity"), InputSize.SQCIF,
                            repeats=3, sampler=sampler)
        assert run.sampling is not None
        assert run.sampling["samples"] == sampler.profile.samples
        result = SuiteResult()
        result.runs.append(run)
        restored = result_from_json(result_to_json(result))
        assert restored.runs[0].sampling["samples"] == \
            sampler.profile.samples
        restored_profile = SampledProfile.from_dict(
            restored.runs[0].sampling)
        assert restored_profile.shares() == \
            pytest.approx(sampler.profile.shares())

    def test_run_without_sampler_has_no_payload(self):
        run = run_benchmark(get_benchmark("disparity"), InputSize.SQCIF)
        assert run.sampling is None


class TestProbeOverhead:
    def test_measured_with_fake_clock(self):
        from repro.core.profiler import measure_probe_overhead

        state = {"now": 0.0}

        def ticking():
            state["now"] += 1e-6
            return state["now"]

        payload = measure_probe_overhead(probes=10, passes=2,
                                         clock=ticking)
        assert payload["probes"] == 10
        assert payload["passes"] == 2
        assert payload["seconds_per_probe"] >= 0.0
        assert payload["calibration_seconds"] > 0.0

    def test_real_clock_is_fast_and_positive(self):
        from repro.core.profiler import measure_probe_overhead

        payload = measure_probe_overhead(probes=200, passes=2)
        assert 0.0 <= payload["seconds_per_probe"] < 1e-3

    def test_rejects_bad_arguments(self):
        from repro.core.profiler import measure_probe_overhead

        with pytest.raises(ValueError):
            measure_probe_overhead(probes=0)
        with pytest.raises(ValueError):
            measure_probe_overhead(passes=0)


class TestCli:
    def test_flame_collapsed(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "flame.collapsed"
        assert cli_main(["flame", "disparity", "--size", "sqcif",
                         "--repeats", "3", "--warmup", "0",
                         "--out", str(out)]) == 0
        folded = parse_collapsed(out.read_text())
        assert folded  # at least one stack sampled
        assert "wrote collapsed profile" in capsys.readouterr().out

    def test_flame_speedscope(self, tmp_path):
        from repro.cli import main as cli_main

        out = tmp_path / "flame.speedscope.json"
        assert cli_main(["flame", "disparity", "--size", "sqcif",
                         "--repeats", "3", "--warmup", "0",
                         "--format", "speedscope",
                         "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["profiles"][0]["type"] == "sampled"

    def test_flame_unknown_slug(self, tmp_path):
        from repro.cli import main as cli_main

        assert cli_main(["flame", "nope",
                         "--out", str(tmp_path / "x")]) == 2

    def test_xcheck_generous_tolerance(self, capsys):
        from repro.cli import main as cli_main

        # SQCIF runs are tiny; a generous tolerance keeps this a smoke
        # test of the plumbing, not a statistics test.
        code = cli_main(["xcheck", "disparity", "--size", "sqcif",
                         "--repeats", "5", "--warmup", "1",
                         "--tolerance", "60", "--min-share", "10"])
        out = capsys.readouterr().out
        assert "Instrumented vs sampled shares" in out
        assert code == 0

    def test_xcheck_unknown_slug(self):
        from repro.cli import main as cli_main

        assert cli_main(["xcheck", "nope"]) == 2
