"""Tests for the Image Segmentation (normalized cuts) application."""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import segmentation_image
from repro.segmentation import (
    BENCHMARK,
    build_affinity,
    discretize,
    label_purity,
    normalized_embedding,
    segment_image,
    stencil_offsets,
    working_resolution,
)


class TestStencil:
    def test_offsets_within_radius(self):
        for dy, dx in stencil_offsets(3):
            assert dy * dy + dx * dx <= 9

    def test_half_plane_no_duplicates(self):
        offsets = stencil_offsets(2)
        for dy, dx in offsets:
            assert (-dy, -dx) not in offsets
        assert (0, 0) not in offsets

    def test_radius_one_is_4_connectivity_half(self):
        assert set(stencil_offsets(1)) == {(0, 1), (1, 0)}

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            stencil_offsets(0)


class TestAffinity:
    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(0)
        img = rng.random((7, 9))
        aff = build_affinity(img, radius=2)
        dense = aff.dense()
        assert np.allclose(dense, dense.T)
        vec = rng.standard_normal(63)
        assert np.allclose(aff.matvec(vec), dense @ vec, atol=1e-12)

    def test_degrees_positive(self):
        img = np.random.default_rng(1).random((6, 6))
        aff = build_affinity(img, radius=1)
        assert (aff.degrees() > 0).all()

    def test_similar_pixels_weighted_higher(self):
        img = np.zeros((4, 8))
        img[:, 4:] = 1.0  # two flat halves
        aff = build_affinity(img, radius=1, sigma_intensity=0.1)
        dense = aff.dense()
        same = dense[0, 1]  # neighbours inside the flat region
        cross = dense[3, 4]  # neighbours across the boundary (cols 3->4)
        assert same > 10 * cross

    def test_invalid_sigmas(self):
        with pytest.raises(ValueError):
            build_affinity(np.ones((4, 4)), sigma_intensity=0.0)

    def test_dense_refuses_large(self):
        img = np.ones((80, 80))
        aff = build_affinity(img, radius=1)
        with pytest.raises(ValueError):
            aff.dense()


class TestEmbeddingAndDiscretize:
    def test_embedding_shape(self):
        img, _ = segmentation_image(InputSize.SQCIF, 0)
        aff = build_affinity(img[:24, :32], radius=2)
        emb = normalized_embedding(aff, 3)
        assert emb.shape == (24 * 32, 3)

    def test_trivial_two_cluster_case(self):
        img = np.zeros((8, 16))
        img[:, 8:] = 1.0
        aff = build_affinity(img, radius=1, sigma_intensity=0.05)
        emb = normalized_embedding(aff, 2)
        labels = discretize(emb)
        grid = labels.reshape(8, 16)
        left = np.bincount(grid[:, :8].ravel(), minlength=2)
        right = np.bincount(grid[:, 8:].ravel(), minlength=2)
        # Each half should be (almost) uniformly one label, and different.
        assert left.max() >= 60 and right.max() >= 60
        assert left.argmax() != right.argmax()


class TestWorkingResolution:
    def test_no_shrink_needed(self):
        assert working_resolution((20, 20), 2400) == (20, 20)

    def test_shrinks_proportionally(self):
        rows, cols = working_resolution((288, 352), 2400)
        assert rows * cols <= 2400
        assert abs(rows / cols - 288 / 352) < 0.15

    def test_minimum_floor(self):
        assert min(working_resolution((2000, 4), 100)) >= 8


class TestSegmentImage:
    def test_recovers_regions(self):
        img, truth = segmentation_image(InputSize.SQCIF, 0, n_regions=4)
        result = segment_image(img, n_segments=4)
        assert label_purity(result.labels, truth) > 0.85

    def test_other_variant(self):
        img, truth = segmentation_image(InputSize.SQCIF, 1, n_regions=4)
        result = segment_image(img, n_segments=4)
        assert label_purity(result.labels, truth) > 0.8

    def test_labels_full_resolution(self):
        img, _ = segmentation_image(InputSize.SQCIF, 0)
        result = segment_image(img, n_segments=3)
        assert result.labels.shape == img.shape
        assert set(np.unique(result.labels)) <= set(range(3))

    def test_needs_two_segments(self):
        with pytest.raises(ValueError):
            segment_image(np.ones((16, 16)), n_segments=1)

    def test_purity_bounds(self):
        truth = np.array([0, 0, 1, 1])
        assert label_purity(truth, truth) == 1.0
        assert label_purity(np.zeros(4, dtype=int), truth) == 0.5

    def test_purity_shape_mismatch(self):
        with pytest.raises(ValueError):
            label_purity(np.zeros(3), np.zeros(4))


class TestBenchmarkWiring:
    def test_run_and_kernels(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["purity"] > 0.8
        for kernel in ("Adjacencymatrix", "Eigensolve", "QRfactorizations",
                       "Filterbanks"):
            assert kernel in profiler.kernel_seconds

    def test_parallelism_modest(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        # Eigensolve's Lanczos recurrence caps its dataflow limit well
        # below the embarrassingly parallel filter banks.
        assert rows["Eigensolve"].parallelism < \
            rows["Filterbanks"].parallelism
        assert rows["QRfactorizations"].parallelism < \
            rows["Adjacencymatrix"].parallelism
