"""Tests for the paced streaming driver and the bounded histogram.

Covers the pacer math on a fake clock (absolute schedule, no drift,
overrun accounting), bucket-percentile agreement with numpy, deadline
misses, multi-stream merge determinism, the schema-v7 export round
trip, latency regression cells and the `sdvbs stream` CLI.
"""

import json

import numpy as np
import pytest

from repro.core.metrics import LogHistogram, MetricsRegistry
from repro.core.streaming import (
    PERCENTILES,
    STREAMING_SCHEMA,
    FrameRecord,
    StreamConfig,
    StreamingReport,
    StreamResult,
    render_stream_report,
    run_stream,
    run_streams,
)
from repro.core.tracing import CATEGORY_APP, CATEGORY_FRAME, TraceRecorder
from repro.core.types import InputSize, SuiteResult


class FakeClock:
    """Deterministic monotonic clock whose sleep advances time exactly."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        assert seconds >= 0
        self.now += seconds

    def frame_fn(self, durations):
        """A frame executor that burns a scripted duration per frame."""

        def frame(index, profiler):
            self.now += durations[index % len(durations)]

        return frame


def _config(**overrides):
    defaults = dict(benchmark="disparity", size=InputSize.CIF, fps=10.0,
                    frames=20, warmup_frames=2, variants=1)
    defaults.update(overrides)
    return StreamConfig(**defaults)


class TestLogHistogram:
    def test_exact_percentiles_match_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(-3.0, 0.6, 400)
        hist = LogHistogram(raw_limit=1000)
        for value in values:
            hist.observe(value)
        assert hist.exact
        for q in (50.0, 90.0, 95.0, 99.0, 99.9):
            assert hist.percentile(q) == pytest.approx(
                np.percentile(values, q), rel=1e-12)

    def test_bucketed_percentiles_within_bucket_resolution(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(-3.0, 0.6, 5000)
        hist = LogHistogram(raw_limit=100, buckets_per_decade=64)
        for value in values:
            hist.observe(value)
        assert not hist.exact
        # One bucket spans a factor of 10**(1/64); allow one width.
        resolution = 10.0 ** (1.0 / 64.0) - 1.0
        for q in (50.0, 90.0, 95.0, 99.0):
            expected = np.percentile(values, q)
            assert hist.percentile(q) == pytest.approx(
                expected, rel=2.0 * resolution)

    def test_memory_stays_bounded_but_aggregates_are_exact(self):
        hist = LogHistogram(raw_limit=64)
        values = [0.001 * (1 + i % 97) for i in range(10_000)]
        for value in values:
            hist.observe(value)
        assert len(hist.raw_samples()) == 64
        assert hist.count == 10_000
        assert hist.total == pytest.approx(sum(values))
        assert hist.min == pytest.approx(min(values))
        assert hist.max == pytest.approx(max(values))

    def test_merge_is_order_independent(self):
        rng = np.random.default_rng(3)
        chunks = [rng.lognormal(-3.0, 0.5, 700) for _ in range(3)]
        parts = []
        for chunk in chunks:
            hist = LogHistogram()
            for value in chunk:
                hist.observe(value)
            parts.append(hist)
        forward = LogHistogram()
        for part in parts:
            forward.merge(part)
        backward = LogHistogram()
        for part in reversed(parts):
            backward.merge(part)
        left, right = forward.summary(), backward.summary()
        assert set(left) == set(right)
        for key in left:
            # count/min/max/percentiles are bit-identical; sum-derived
            # fields only up to float addition order.
            assert left[key] == pytest.approx(right[key], rel=1e-12)
        assert forward.count == sum(len(c) for c in chunks)

    def test_merge_rejects_different_layouts(self):
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=64).merge(
                LogHistogram(buckets_per_decade=32))

    def test_summary_carries_all_reported_percentiles(self):
        hist = LogHistogram()
        hist.observe(0.010)
        summary = hist.summary()
        for q in PERCENTILES:
            assert f"p{q:g}" in summary


class TestRegistryHistograms:
    def test_observe_is_bounded_for_long_streams(self):
        registry = MetricsRegistry()
        for i in range(5000):
            registry.observe("frame_seconds", 0.001 * (1 + i % 13))
        hist = registry.log_histogram("frame_seconds")
        assert hist is not None
        assert hist.count == 5000
        assert len(registry.histogram("frame_seconds")) == hist.raw_limit
        summary = registry.to_dict()["histograms"]["frame_seconds"]
        assert summary["count"] == 5000

    def test_short_histogram_api_unchanged(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("lat", value)
        assert registry.histogram("lat") == [1.0, 2.0, 3.0]
        assert registry.to_dict()["histograms"]["lat"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }


class TestPacer:
    def test_absolute_schedule_has_no_drift_over_1000_frames(self):
        clock = FakeClock()
        config = _config(frames=1000, warmup_frames=0, fps=10.0)
        # Frames take 20 ms against a 100 ms period: always on time.
        result = run_stream(config, clock=clock, sleep=clock.sleep,
                            frame_fn=clock.frame_fn([0.020]))
        for record in result.frames:
            assert record.start == pytest.approx(record.scheduled,
                                                 abs=1e-9)
        last = result.frames[-1]
        assert last.scheduled == pytest.approx(999 * 0.1)
        assert result.overruns() == 0
        assert result.jitter_seconds() == pytest.approx(0.0, abs=1e-9)
        assert result.sustained_fps() == pytest.approx(10.0, rel=1e-3)

    def test_overruns_are_accounted_and_schedule_recovers(self):
        clock = FakeClock()
        config = _config(frames=30, warmup_frames=0, fps=10.0)
        # Every 10th frame burns 250 ms (2.5 periods); the next two
        # frames are released late, then the pacer is back on schedule.
        durations = [0.250 if i % 10 == 0 else 0.020 for i in range(30)]
        result = run_stream(
            config, clock=clock, sleep=clock.sleep,
            frame_fn=lambda i, p: clock.sleep(durations[i]))
        assert result.overruns() == 6  # 3 slow frames x 2 pushed frames
        late = [f for f in result.frames if f.overran]
        assert all(f.lateness > 0 for f in late)
        # Recovery: the frame after each overrun pair is on time again.
        for slow_index in (0, 10, 20):
            recovered = result.frames[slow_index + 3]
            assert recovered.start == pytest.approx(recovered.scheduled)

    def test_warmup_frames_are_excluded_from_stats(self):
        clock = FakeClock()
        config = _config(frames=10, warmup_frames=3, fps=10.0)
        # Warm-up frames are pathologically slow; steady frames fast.
        result = run_stream(
            config, clock=clock, sleep=clock.sleep,
            frame_fn=lambda i, p: clock.sleep(0.500 if i < 3 else 0.010))
        assert len(result.frames) == 13
        assert len(result.steady_frames()) == 10
        assert result.histogram.count == 10
        assert result.histogram.max == pytest.approx(0.010)

    def test_deadline_misses_counted_against_budget(self):
        clock = FakeClock()
        config = _config(frames=20, warmup_frames=0, fps=10.0,
                         deadline_ms=50.0)
        # Alternate 10 ms / 100 ms frames: every second frame misses.
        result = run_stream(
            config, clock=clock, sleep=clock.sleep,
            frame_fn=lambda i, p: clock.sleep(0.010 if i % 2 else 0.100))
        assert result.deadline_misses() == 10
        payload = result.to_dict()
        assert payload["deadline"] == {
            "budget_ms": 50.0, "misses": 10, "frames": 20,
            "miss_rate": 0.5,
        }

    def test_zero_deadline_misses_every_frame(self):
        clock = FakeClock()
        config = _config(frames=5, warmup_frames=0, deadline_ms=0.0)
        result = run_stream(config, clock=clock, sleep=clock.sleep,
                            frame_fn=clock.frame_fn([0.005]))
        assert result.deadline_misses() == 5

    def test_frame_spans_show_pacing_gaps(self):
        clock = FakeClock()
        recorder = TraceRecorder()
        config = _config(frames=4, warmup_frames=1, fps=10.0)
        run_stream(config, clock=clock, sleep=clock.sleep,
                   frame_fn=clock.frame_fn([0.020]), recorder=recorder)
        frame_spans = [s for s in recorder.spans
                       if s.category == CATEGORY_FRAME]
        app_spans = [s for s in recorder.spans
                     if s.category == CATEGORY_APP]
        assert len(frame_spans) == 5
        assert len(app_spans) == 5
        # Frames take 20 ms of the 100 ms period: consecutive frame
        # spans are separated by an 80 ms pacing gap.
        ordered = sorted(frame_spans, key=lambda s: s.start)
        for left, right in zip(ordered, ordered[1:]):
            gap = right.start - (left.start + left.duration)
            assert gap == pytest.approx(0.080, abs=1e-9)
        assert all(s.attrs.get("phase") in ("warmup", "steady")
                   for s in frame_spans)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _config(fps=0.0)
        with pytest.raises(ValueError):
            _config(frames=0)
        with pytest.raises(ValueError):
            _config(streams=0)
        with pytest.raises(ValueError):
            _config(deadline_ms=-1.0)
        with pytest.raises(ValueError):
            _config(variants=6)
        # A zero deadline is legal (the 100%-miss CI probe uses it).
        assert _config(deadline_ms=0.0).budget_ms == 0.0
        # Default budget is the frame period.
        assert _config(fps=20.0).budget_ms == pytest.approx(50.0)


def _synthetic_stream(stream, latencies, config):
    """Build a StreamResult as if `latencies` were measured."""
    result = StreamResult(stream=stream, config=config)
    period = config.period
    now = 0.0
    for index, latency in enumerate(latencies):
        start = max(now, index * period)
        result.frames.append(FrameRecord(
            index=index, scheduled=index * period, start=start,
            end=start + latency))
        result.histogram.observe(latency)
        now = start + latency
    return result


class TestMultiStream:
    def test_merged_percentiles_are_order_independent(self):
        config = _config(frames=100, warmup_frames=0, streams=2)
        rng = np.random.default_rng(5)
        streams = [
            _synthetic_stream(i, rng.lognormal(-3.5, 0.4, 100), config)
            for i in range(3)
        ]
        forward = StreamingReport(config=config, streams=list(streams))
        backward = StreamingReport(config=config,
                                   streams=list(reversed(streams)))
        assert forward.to_dict() == backward.to_dict()

    def test_merged_block_aggregates_streams(self):
        config = _config(frames=4, warmup_frames=0, fps=10.0,
                         deadline_ms=50.0, streams=2)
        fast = _synthetic_stream(0, [0.010] * 4, config)
        slow = _synthetic_stream(1, [0.100] * 4, config)
        report = StreamingReport(config=config, streams=[fast, slow])
        merged = report.to_dict()["merged"]
        assert merged["frames"] == 8
        assert merged["deadline"]["misses"] == 4
        assert merged["deadline"]["miss_rate"] == pytest.approx(0.5)
        assert merged["latency_ms"]["count"] == 8
        assert merged["sustained_fps"] == pytest.approx(
            fast.sustained_fps() + slow.sustained_fps())

    def test_threaded_streams_produce_per_stream_results(self):
        # Real threads, synthetic frames: wall-clock sleeps are tiny.
        config = _config(benchmark="disparity", size=InputSize.SQCIF,
                         fps=200.0, frames=5, warmup_frames=1, streams=3)
        recorder = TraceRecorder()
        report = run_streams(config, frame_fn=lambda i, p: None,
                             recorder=recorder)
        assert sorted(s.stream for s in report.streams) == [0, 1, 2]
        assert all(len(s.steady_frames()) == 5 for s in report.streams)
        payload = report.to_dict()
        assert payload["schema"] == STREAMING_SCHEMA
        assert len(payload["streams"]) == 3
        # Absorbed frame spans land on one track per stream.
        tracks = {s.track for s in recorder.spans}
        assert tracks == {0, 1, 2}

    def test_render_report_table(self):
        config = _config(frames=4, warmup_frames=0, streams=2)
        streams = [_synthetic_stream(i, [0.010] * 4, config)
                   for i in range(2)]
        text = render_stream_report(
            StreamingReport(config=config, streams=streams))
        assert "p99.9" in text
        assert "merged" in text
        assert "disparity @ CIF" in text


class TestExportRoundTrip:
    def test_streaming_block_round_trips_at_v7(self):
        from repro.core.export import result_from_json, result_to_json

        config = _config(frames=4, warmup_frames=0)
        report = StreamingReport(
            config=config,
            streams=[_synthetic_stream(0, [0.010] * 4, config)])
        result = SuiteResult()
        result.streaming = report.to_dict()
        text = result_to_json(result)
        payload = json.loads(text)
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        restored = result_from_json(text)
        assert restored.streaming == report.to_dict()

    def test_v6_exports_without_streaming_still_read(self):
        from repro.core.export import result_from_dict

        payload = {"schema": "sdvbs-repro/suite-result/v6", "runs": []}
        restored = result_from_dict(payload)
        assert restored.streaming is None


class TestLatencyRegression:
    def _result_with_percentiles(self, p50, p95, p99, spread=0.05):
        """A restored export whose two streams straddle the merged
        percentiles by ±spread (ms), giving a real noise estimate."""
        config = _config(streams=2)
        result = SuiteResult()
        streams = []
        for i, sign in enumerate((-1.0, 1.0)):
            streams.append({
                "stream": i,
                "latency_ms": {
                    "count": 50,
                    "p50": p50 + sign * spread,
                    "p95": p95 + sign * spread,
                    "p99": p99 + sign * spread,
                    "stddev": 1.0,
                },
            })
        result.streaming = {
            "schema": STREAMING_SCHEMA,
            "config": config.to_dict(),
            "streams": streams,
            "merged": {
                "latency_ms": {"count": 100, "p50": p50, "p95": p95,
                               "p99": p99, "stddev": 1.0},
            },
        }
        return result

    def test_cells_keyed_by_benchmark_and_metric(self):
        from repro.core.regress import latency_cells_from_result

        cells = latency_cells_from_result(
            self._result_with_percentiles(20.0, 30.0, 40.0))
        assert set(cells) == {("disparity[p50]", "CIF"),
                              ("disparity[p95]", "CIF"),
                              ("disparity[p99]", "CIF")}
        median, noise = cells[("disparity[p99]", "CIF")]
        assert median == pytest.approx(0.040)
        assert noise is not None and noise > 0

    def test_batch_export_yields_no_latency_cells(self):
        from repro.core.regress import latency_cells_from_result

        assert latency_cells_from_result(SuiteResult()) == {}

    def test_p99_blowup_flagged_while_median_passes(self):
        from repro.core.regress import (
            detect_regressions,
            latency_cells_from_result,
        )

        baseline = latency_cells_from_result(
            self._result_with_percentiles(20.0, 30.0, 40.0))
        # Candidate: identical p50, 3x p99 — a pure tail regression.
        candidate = latency_cells_from_result(
            self._result_with_percentiles(20.0, 33.0, 120.0))
        report = detect_regressions(baseline, candidate, sigmas=2.0,
                                    min_slowdown=0.10)
        status = {entry.benchmark: entry.status
                  for entry in report.entries}
        assert status["disparity[p99]"] == "regression"
        assert status["disparity[p50]"] in ("ok", "within noise")
        assert report.exit_code == 1

    def test_unchanged_percentiles_pass(self):
        from repro.core.regress import (
            detect_regressions,
            latency_cells_from_result,
        )

        cells = latency_cells_from_result(
            self._result_with_percentiles(20.0, 30.0, 40.0))
        report = detect_regressions(cells, dict(cells))
        assert report.exit_code == 0


class TestCliStream:
    def test_stream_export_and_report(self, tmp_path):
        from repro.cli import main as cli_main
        from repro.core.htmlreport import SECTION_IDS

        export = tmp_path / "stream.json"
        out = tmp_path / "report.html"
        assert cli_main(["stream", "disparity", "--size", "sqcif",
                         "--fps", "60", "--frames", "6", "--streams", "2",
                         "--warmup-frames", "1", "--variants", "1",
                         "--json", str(export)]) == 0
        payload = json.loads(export.read_text())
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        block = payload["streaming"]
        assert block["schema"] == STREAMING_SCHEMA
        assert len(block["streams"]) == 2
        for entry in block["streams"] + [block["merged"]]:
            for q in ("p50", "p90", "p95", "p99", "p99.9"):
                assert entry["latency_ms"][q] > 0
        assert block["merged"]["deadline"]["frames"] == 12
        assert "histogram_ms" in block["merged"]
        assert payload["manifest"] is not None
        # The HTML report renders the latency section from the export.
        assert cli_main(["report", "--from", str(export),
                         "--out", str(out)]) == 0
        html = out.read_text()
        for section_id in SECTION_IDS:
            assert f'id="{section_id}"' in html
        assert "Streaming latency distribution" in html

    def test_slo_gate_fails_on_forced_misses(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["stream", "disparity", "--size", "sqcif",
                         "--fps", "60", "--frames", "3",
                         "--warmup-frames", "0", "--variants", "1",
                         "--deadline-ms", "0", "--slo-gate",
                         "--json", str(tmp_path / "s.json")]) == 1
        captured = capsys.readouterr()
        assert "SLO gate failed" in captured.err
        assert "100.0%" in captured.err

    def test_slo_gate_passes_with_generous_deadline(self, tmp_path):
        from repro.cli import main as cli_main

        assert cli_main(["stream", "disparity", "--size", "sqcif",
                         "--fps", "60", "--frames", "3",
                         "--warmup-frames", "0", "--variants", "1",
                         "--deadline-ms", "60000", "--slo-gate",
                         "--json", str(tmp_path / "s.json")]) == 0

    def test_rejects_unknown_benchmark(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["stream", "nonesuch",
                         "--json", str(tmp_path / "s.json")]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
