"""Tests for PGM I/O and the Cholesky/SPD solver additions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imgproc.io import read_pgm, write_pgm
from repro.linalg import SingularMatrixError, cholesky, solve_spd


def spd_matrix(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 5, 10])
    def test_factorization(self, n):
        a = spd_matrix(n, n)
        lower = cholesky(a)
        assert np.allclose(lower @ lower.T, a, atol=1e-9)
        assert np.allclose(np.triu(lower, 1), 0.0)
        assert (np.diag(lower) > 0).all()

    def test_matches_numpy(self):
        a = spd_matrix(6, 42)
        assert np.allclose(cholesky(a), np.linalg.cholesky(a), atol=1e-9)

    def test_indefinite_rejected(self):
        with pytest.raises(SingularMatrixError):
            cholesky(np.diag([1.0, -2.0]))

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError):
            cholesky(np.array([[1.0, 2.0], [0.0, 1.0]]))

    @pytest.mark.parametrize("n", [2, 6])
    def test_solve_spd(self, n):
        a = spd_matrix(n, n + 7)
        x_true = np.arange(1.0, n + 1.0)
        x = solve_spd(a, a @ x_true)
        assert np.allclose(x, x_true, atol=1e-9)

    def test_solve_spd_matrix_rhs(self):
        a = spd_matrix(4, 3)
        b = np.random.default_rng(4).random((4, 2))
        x = solve_spd(a, b)
        assert np.allclose(a @ x, b, atol=1e-9)

    @settings(max_examples=20)
    @given(st.integers(1, 8), st.integers(0, 500))
    def test_property_roundtrip(self, n, seed):
        a = spd_matrix(n, seed)
        lower = cholesky(a)
        assert np.allclose(lower @ lower.T, a, atol=1e-8)


class TestPgm:
    def _image(self, seed=0, shape=(12, 17)):
        return np.random.default_rng(seed).random(shape)

    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip_8bit(self, tmp_path, binary):
        img = self._image()
        path = tmp_path / "img.pgm"
        write_pgm(path, img, binary=binary)
        restored = read_pgm(path)
        assert restored.shape == img.shape
        assert np.abs(restored - img).max() <= 0.5 / 255 + 1e-9

    def test_roundtrip_16bit(self, tmp_path):
        img = self._image(1)
        path = tmp_path / "img16.pgm"
        write_pgm(path, img, maxval=65535)
        restored = read_pgm(path)
        assert np.abs(restored - img).max() <= 0.5 / 65535 + 1e-12

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_text("P2\n# a comment\n2 2\n# another\n255\n0 128\n255 64\n")
        img = read_pgm(path)
        assert img.shape == (2, 2)
        assert img[0, 1] == pytest.approx(128 / 255)

    def test_values_clipped_on_write(self, tmp_path):
        path = tmp_path / "clip.pgm"
        write_pgm(path, np.array([[-1.0, 2.0]]))
        img = read_pgm(path)
        assert img[0, 0] == 0.0
        assert img[0, 1] == 1.0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n2 2\n255\n" + bytes(12))
        with pytest.raises(ValueError):
            read_pgm(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_bytes(b"P5\n4 4\n255\n" + bytes(3))
        with pytest.raises(ValueError):
            read_pgm(path)

    def test_invalid_write_args(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.ones(4))
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.ones((2, 2)), maxval=0)

    def test_feeds_the_suite(self, tmp_path):
        """End-to-end: a PGM image round-trips into SIFT."""
        from repro.core import InputSize
        from repro.core.inputs import image
        from repro.sift import extract_features

        scene = image(InputSize.SQCIF, 0)
        path = tmp_path / "scene.pgm"
        write_pgm(path, scene)
        loaded = read_pgm(path)
        result = extract_features(loaded, n_octaves=2)
        assert len(result.keypoints) > 10
