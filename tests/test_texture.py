"""Tests for the Texture Synthesis application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import texture_sample
from repro.texture import (
    BENCHMARK,
    analyze,
    autocorrelation,
    build_pyramid,
    impose_moments,
    impose_spectrum,
    match_histogram,
    moments,
    oriented_kernel,
    reconstruct,
    synthesize_from_exemplar,
)


class TestMoments:
    def test_gaussian_sample(self):
        rng = np.random.default_rng(0)
        sample = rng.standard_normal(200_000)
        mean, var, skew, kurt = moments(sample)
        assert mean == pytest.approx(0.0, abs=0.02)
        assert var == pytest.approx(1.0, abs=0.02)
        assert skew == pytest.approx(0.0, abs=0.05)
        assert kurt == pytest.approx(3.0, abs=0.1)

    def test_constant_degenerate(self):
        mean, var, skew, kurt = moments(np.full(100, 2.5))
        assert mean == 2.5
        assert var == 0.0
        assert skew == 0.0
        assert kurt == 3.0

    def test_skewed_sample(self):
        rng = np.random.default_rng(1)
        sample = rng.exponential(1.0, 100_000)
        _m, _v, skew, _k = moments(sample)
        assert skew == pytest.approx(2.0, abs=0.15)


class TestAutocorrelation:
    def test_center_is_one(self):
        img = np.random.default_rng(2).random((32, 32))
        ac = autocorrelation(img, max_lag=2)
        assert ac[2, 2] == pytest.approx(1.0)

    def test_symmetric(self):
        img = np.random.default_rng(3).random((32, 32))
        ac = autocorrelation(img, max_lag=3)
        assert np.allclose(ac, ac[::-1, ::-1], atol=1e-10)

    def test_white_noise_low_off_center(self):
        img = np.random.default_rng(4).standard_normal((64, 64))
        ac = autocorrelation(img, max_lag=2)
        off = ac.copy()
        off[2, 2] = 0.0
        assert np.abs(off).max() < 0.1

    def test_constant_zero(self):
        assert np.allclose(autocorrelation(np.full((16, 16), 1.0)), 0.0)


class TestPyramid:
    def test_exact_reconstruction(self):
        img = texture_sample(InputSize.SQCIF, 0, "stochastic")
        pyramid = build_pyramid(img, n_levels=3)
        rec = reconstruct(pyramid, img.shape)
        assert np.abs(rec - img).max() < 1e-12

    def test_band_counts(self):
        img = texture_sample(InputSize.SQCIF, 0, "stochastic")
        pyramid = build_pyramid(img, n_levels=3, n_orientations=4)
        assert len(pyramid.bandpass) == 3
        assert all(len(level) == 4 for level in pyramid.bands)

    def test_oriented_kernel_zero_mean(self):
        for theta in (0.0, 0.7, 1.5):
            k = oriented_kernel(theta)
            assert abs(k.sum()) < 1e-12

    def test_oriented_kernel_selectivity(self):
        # A vertical-edge image excites the horizontal-derivative kernel.
        img = np.zeros((32, 32))
        img[:, 16:] = 1.0
        from repro.imgproc.convolution import convolve2d

        horizontal = np.abs(convolve2d(img, oriented_kernel(0.0))).sum()
        vertical = np.abs(convolve2d(img, oriented_kernel(np.pi / 2))).sum()
        assert horizontal > 5 * vertical

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_pyramid(np.ones((16, 16)), n_levels=0)
        with pytest.raises(ValueError):
            oriented_kernel(0.0, size=4)


class TestProjections:
    def test_match_histogram_exact(self):
        rng = np.random.default_rng(5)
        target = np.sort(rng.random(100))
        values = rng.standard_normal(100)
        out = match_histogram(values, target)
        assert np.allclose(np.sort(out.ravel()), target)

    def test_match_histogram_preserves_ranks(self):
        rng = np.random.default_rng(6)
        values = rng.standard_normal(50)
        target = np.sort(rng.random(50))
        out = match_histogram(values, target)
        assert np.array_equal(np.argsort(values), np.argsort(out))

    def test_impose_spectrum_matches_magnitude(self):
        rng = np.random.default_rng(7)
        img = rng.standard_normal((32, 32))
        target = np.abs(np.fft.rfft2(rng.standard_normal((32, 32))))
        # Targets produced by analyze() are mean-removed, so DC is zero.
        target[0, 0] = 0.0
        out = impose_spectrum(img, target)
        got = np.abs(np.fft.rfft2(out - out.mean()))
        assert np.allclose(got, target, atol=1e-8)

    def test_impose_moments_mean_var_exact(self):
        rng = np.random.default_rng(8)
        values = rng.random(500)
        target = np.array([2.0, 4.0, 0.0, 3.0])
        out = impose_moments(values, target)
        got = moments(out)
        assert got[0] == pytest.approx(2.0, abs=1e-9)
        assert got[1] == pytest.approx(4.0, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_impose_moments_nudges_kurtosis(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(2000)
        high_kurt = np.array([0.0, 1.0, 0.0, 5.0])
        out = impose_moments(values, high_kurt, iterations=5)
        assert moments(out)[3] > moments(values)[3]


class TestAnalyzeSynthesize:
    def test_statistics_shapes(self):
        img = texture_sample(InputSize.SQCIF, 0, "stochastic")
        stats = analyze(img, n_levels=3, n_orientations=4)
        assert stats.pixel_moments.shape == (4,)
        assert len(stats.band_energies) == 3
        assert all(c.shape == (4, 4) for c in stats.cross_correlations)
        assert stats.histogram.size == img.size

    def test_self_distance_zero(self):
        img = texture_sample(InputSize.SQCIF, 0, "stochastic")
        stats = analyze(img)
        assert stats.distance(stats) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("kind", ["stochastic", "structural"])
    def test_synthesis_converges(self, kind):
        exemplar = texture_sample(InputSize.SQCIF, 0, kind)
        result = synthesize_from_exemplar(exemplar, iterations=6, seed=0)
        assert result.residuals[-1] < result.residuals[0]
        assert result.texture.shape == exemplar.shape

    def test_synthesis_matches_histogram_and_moments(self):
        exemplar = texture_sample(InputSize.SQCIF, 1, "structural")
        result = synthesize_from_exemplar(exemplar, iterations=4, seed=1)
        target = result.target.pixel_moments
        got = moments(result.texture)
        assert got[0] == pytest.approx(target[0], abs=0.01)
        assert got[1] == pytest.approx(target[1], rel=0.1)

    def test_enlarging_synthesis(self):
        exemplar = texture_sample(InputSize.SQCIF, 0, "stochastic")
        out_shape = (exemplar.shape[0] * 2, exemplar.shape[1] * 2)
        result = synthesize_from_exemplar(
            exemplar, out_shape=out_shape, iterations=3, seed=0
        )
        assert result.texture.shape == out_shape


class TestBenchmarkWiring:
    def test_run_and_kernels(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["final_residual"] < out["initial_residual"] * 1.05
        for kernel in ("Sampling", "MatrixOps", "Kurtosis", "PCA"):
            assert kernel in profiler.kernel_seconds

    def test_variant_parity_selects_kind(self):
        even = BENCHMARK.setup(InputSize.SQCIF, 0)
        odd = BENCHMARK.setup(InputSize.SQCIF, 1)
        assert even[1] == "stochastic"
        assert odd[1] == "structural"

    def test_parallelism_iteration_bound(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        # The synthesis loop serializes across iterations; PCA's tiny
        # rotations are the narrowest kernel.
        assert rows["PCA"].parallelism < rows["Sampling"].parallelism
        assert rows["Sampling"].parallelism > 100
