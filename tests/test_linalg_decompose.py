"""Unit and property tests for QR, SVD, eigensolvers and least squares."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.decompose import (
    null_vector,
    pseudo_inverse,
    qr_decompose,
    svd_jacobi,
)
from repro.linalg.eigen import (
    jacobi_eigh,
    lanczos,
    power_iteration,
    smallest_eigenvectors,
    smallest_eigenvectors_operator,
    tridiagonal_eigh,
)
from repro.linalg.lstsq import conjugate_gradient, lstsq_normal, lstsq_qr
from repro.linalg.matrix import SingularMatrixError


def random_matrix(rows, cols, seed):
    return np.random.default_rng(seed).standard_normal((rows, cols))


class TestQR:
    @pytest.mark.parametrize("shape", [(3, 3), (6, 3), (8, 8), (5, 1)])
    def test_reconstruction(self, shape):
        a = random_matrix(*shape, seed=sum(shape))
        q, r = qr_decompose(a)
        assert np.allclose(q @ r, a, atol=1e-9)

    @pytest.mark.parametrize("shape", [(4, 4), (7, 3)])
    def test_q_orthonormal(self, shape):
        a = random_matrix(*shape, seed=11)
        q, _r = qr_decompose(a)
        assert np.allclose(q.T @ q, np.eye(shape[1]), atol=1e-9)

    def test_r_upper_triangular_positive_diag(self):
        a = random_matrix(5, 5, seed=12)
        _q, r = qr_decompose(a)
        assert np.allclose(np.tril(r, -1), 0.0)
        assert (np.diag(r) >= 0).all()

    def test_wide_matrix_rejected(self):
        with pytest.raises(ValueError):
            qr_decompose(np.ones((2, 5)))

    @settings(max_examples=20)
    @given(st.integers(1, 6), st.integers(0, 50))
    def test_property_reconstruction(self, n, seed):
        a = random_matrix(n + 2, n, seed)
        q, r = qr_decompose(a)
        assert np.allclose(q @ r, a, atol=1e-8)


class TestSVD:
    @pytest.mark.parametrize("shape", [(4, 4), (7, 3), (3, 7), (5, 1), (1, 5)])
    def test_reconstruction(self, shape):
        a = random_matrix(*shape, seed=sum(shape) + 1)
        u, s, vt = svd_jacobi(a)
        assert np.allclose(u @ np.diag(s) @ vt, a, atol=1e-8)

    def test_singular_values_descending_nonnegative(self):
        a = random_matrix(6, 4, seed=2)
        _u, s, _vt = svd_jacobi(a)
        assert (s >= 0).all()
        assert (np.diff(s) <= 1e-12).all()

    def test_matches_numpy_singular_values(self):
        a = random_matrix(5, 5, seed=3)
        _u, s, _vt = svd_jacobi(a)
        assert np.allclose(s, np.linalg.svd(a, compute_uv=False), atol=1e-8)

    def test_orthonormal_factors(self):
        a = random_matrix(6, 4, seed=4)
        u, _s, vt = svd_jacobi(a)
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-8)
        assert np.allclose(vt @ vt.T, np.eye(4), atol=1e-8)

    def test_rank_deficient(self):
        base = random_matrix(5, 2, seed=5)
        a = base @ base.T  # rank 2
        u, s, vt = svd_jacobi(a)
        assert np.allclose(u @ np.diag(s) @ vt, a, atol=1e-8)
        assert (s[2:] < 1e-8).all()

    def test_null_vector(self):
        # Build a matrix with a known null direction.
        direction = np.array([1.0, -2.0, 1.0])
        direction /= np.linalg.norm(direction)
        rng = np.random.default_rng(6)
        rows = [v - (v @ direction) * direction for v in
                rng.standard_normal((6, 3))]
        a = np.stack(rows)
        null = null_vector(a)
        assert np.abs(a @ null).max() < 1e-8
        assert abs(abs(null @ direction) - 1.0) < 1e-8

    def test_pseudo_inverse(self):
        a = random_matrix(6, 3, seed=7)
        pinv = pseudo_inverse(a)
        assert np.allclose(pinv, np.linalg.pinv(a), atol=1e-8)

    def test_pseudo_inverse_wide(self):
        a = random_matrix(3, 6, seed=8)
        assert np.allclose(pseudo_inverse(a), np.linalg.pinv(a), atol=1e-8)


class TestEigen:
    def test_jacobi_matches_numpy(self):
        a = random_matrix(6, 6, seed=9)
        sym = a + a.T
        values, vectors = jacobi_eigh(sym)
        assert np.allclose(values, np.linalg.eigvalsh(sym), atol=1e-8)
        assert np.allclose(sym @ vectors, vectors @ np.diag(values), atol=1e-7)

    def test_jacobi_requires_symmetric(self):
        with pytest.raises(ValueError):
            jacobi_eigh(random_matrix(4, 4, seed=10))

    def test_jacobi_diagonal_input(self):
        values, _ = jacobi_eigh(np.diag([3.0, 1.0, 2.0]))
        assert np.allclose(values, [1.0, 2.0, 3.0])

    @pytest.mark.parametrize("n", [1, 2, 10, 40])
    def test_tridiagonal_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(0, n - 1))
        t = np.diag(d)
        if n > 1:
            t += np.diag(e, 1) + np.diag(e, -1)
        values, vectors = tridiagonal_eigh(d, e)
        assert np.allclose(values, np.linalg.eigvalsh(t), atol=1e-8)
        assert np.allclose(t @ vectors, vectors * values, atol=1e-7)

    def test_tridiagonal_size_mismatch(self):
        with pytest.raises(ValueError):
            tridiagonal_eigh(np.ones(3), np.ones(3))

    def test_lanczos_extreme_values(self):
        a = random_matrix(80, 80, seed=12)
        sym = a + a.T
        values, vectors = lanczos(lambda v: sym @ v, 80, 80)
        ref = np.linalg.eigvalsh(sym)
        assert values[0] == pytest.approx(ref[0], abs=1e-6)
        assert np.allclose(
            sym @ vectors[:, 0], values[0] * vectors[:, 0], atol=1e-5
        )

    def test_smallest_eigenvectors_dense_fallback(self):
        a = random_matrix(20, 20, seed=13)
        sym = a + a.T
        values, _ = smallest_eigenvectors(sym, 2)
        assert np.allclose(values, np.linalg.eigvalsh(sym)[:2], atol=1e-8)

    def test_smallest_eigenvectors_lanczos_path(self):
        a = random_matrix(100, 100, seed=14)
        sym = a + a.T
        values, vectors = smallest_eigenvectors(sym, 3)
        ref = np.sort(np.linalg.eigvalsh(sym))[:3]
        assert np.allclose(values, ref, atol=1e-4)
        residual = np.abs(sym @ vectors - vectors * values).max()
        assert residual < 1e-4 * np.abs(sym).max()

    def test_operator_variant(self):
        a = random_matrix(90, 90, seed=15)
        sym = a + a.T
        values, _ = smallest_eigenvectors_operator(
            lambda v: sym @ v, 90, 2, scale=float(np.abs(sym).max())
        )
        ref = np.sort(np.linalg.eigvalsh(sym))[:2]
        assert np.allclose(values, ref, atol=1e-4)

    def test_power_iteration(self):
        a = np.diag([1.0, 2.0, 10.0])
        value, vector = power_iteration(a)
        assert value == pytest.approx(10.0, abs=1e-8)
        assert abs(abs(vector[2]) - 1.0) < 1e-6

    def test_count_bounds(self):
        with pytest.raises(ValueError):
            smallest_eigenvectors(np.eye(4), 5)
        with pytest.raises(ValueError):
            lanczos(lambda v: v, 4, 0)


class TestLeastSquares:
    def test_qr_exact_on_square(self):
        a = random_matrix(4, 4, seed=16) + 4 * np.eye(4)
        x_true = np.arange(4.0)
        assert np.allclose(lstsq_qr(a, a @ x_true), x_true, atol=1e-9)

    def test_qr_overdetermined_matches_numpy(self):
        a = random_matrix(10, 3, seed=17)
        b = random_matrix(10, 1, seed=18).ravel()
        x = lstsq_qr(a, b)
        ref = np.linalg.lstsq(a, b, rcond=None)[0]
        assert np.allclose(x, ref, atol=1e-8)

    def test_qr_matrix_rhs(self):
        a = random_matrix(8, 3, seed=19)
        b = random_matrix(8, 2, seed=20)
        x = lstsq_qr(a, b)
        ref = np.linalg.lstsq(a, b, rcond=None)[0]
        assert np.allclose(x, ref, atol=1e-8)

    def test_qr_rank_deficient_raises(self):
        a = np.ones((5, 2))
        with pytest.raises(SingularMatrixError):
            lstsq_qr(a, np.ones(5))

    def test_normal_equations_agree(self):
        a = random_matrix(12, 4, seed=21)
        b = random_matrix(12, 1, seed=22).ravel()
        assert np.allclose(lstsq_normal(a, b), lstsq_qr(a, b), atol=1e-6)

    def test_ridge_shrinks(self):
        a = random_matrix(10, 3, seed=23)
        b = random_matrix(10, 1, seed=24).ravel()
        plain = np.linalg.norm(lstsq_normal(a, b))
        ridged = np.linalg.norm(lstsq_normal(a, b, ridge=10.0))
        assert ridged < plain

    def test_cg_solves_spd(self):
        a = random_matrix(15, 15, seed=25)
        spd = a @ a.T + 15 * np.eye(15)
        b = random_matrix(15, 1, seed=26).ravel()
        x = conjugate_gradient(lambda v: spd @ v, b)
        assert np.allclose(spd @ x, b, atol=1e-6)

    def test_cg_rejects_indefinite(self):
        a = np.diag([1.0, -1.0])
        with pytest.raises(SingularMatrixError):
            conjugate_gradient(lambda v: a @ v, np.array([1.0, 1.0]))

    def test_cg_warm_start(self):
        a = np.diag([2.0, 3.0])
        b = np.array([4.0, 9.0])
        x = conjugate_gradient(lambda v: a @ v, b, x0=np.array([2.0, 3.0]))
        assert np.allclose(x, [2.0, 3.0])
