"""Tests for JSON export/import of suite results."""

import json

import pytest

from repro.core import InputSize, run_suite
from repro.core.export import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.core.types import BenchmarkRun, SuiteResult


def small_result():
    result = SuiteResult()
    result.runs.append(
        BenchmarkRun(
            benchmark="demo",
            size=InputSize.QCIF,
            variant=2,
            total_seconds=1.5,
            kernel_seconds={"A": 1.0, "B": 0.25},
            kernel_calls={"A": 4, "B": 1},
            outputs={"metric": 0.5},
        )
    )
    return result


class TestRoundTrip:
    def test_json_is_valid(self):
        text = result_to_json(small_result())
        payload = json.loads(text)
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        assert len(payload["runs"]) == 1

    def test_v3_payload_still_readable(self):
        payload = result_to_dict(small_result())
        payload["schema"] = "sdvbs-repro/suite-result/v3"
        for entry in payload["runs"]:
            entry.pop("metrics", None)
        restored = result_from_dict(payload)
        assert restored.runs[0].total_seconds == 1.5
        assert restored.runs[0].metrics is None

    def test_metrics_roundtrip(self):
        result = small_result()
        result.runs[0].metrics = {
            "counters": {"kernel/SSD/calls": 16.0},
            "gauges": {},
            "histograms": {},
            "kernels": {
                "disparity.ssd": {
                    "calls": 16, "flops": 393216.0, "bytes": 4718592.0,
                    "seconds": 0.004, "gflops_per_s": 0.0983,
                    "gbytes_per_s": 1.1796, "arithmetic_intensity": 0.0833,
                },
            },
        }
        restored = result_from_json(result_to_json(result))
        assert restored.runs[0].metrics == result.runs[0].metrics

    def test_real_run_carries_metrics(self):
        result = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                           variants=[0])
        metrics = result.runs[0].metrics
        assert metrics is not None
        work = metrics["kernels"]["disparity.ssd"]
        assert work["flops"] > 0
        assert work["bytes"] > 0
        assert work["arithmetic_intensity"] > 0
        restored = result_from_json(result_to_json(result))
        assert restored.runs[0].metrics == metrics

    def test_export_always_carries_manifest(self):
        payload = result_to_dict(small_result())
        manifest = payload["manifest"]
        assert manifest["schema"] == "sdvbs-repro/manifest/v1"
        for key in ("host", "python", "numpy", "measurement"):
            assert key in manifest, key
        assert "Operating System" in manifest["host"]

    def test_v1_payload_still_readable(self):
        payload = result_to_dict(small_result())
        payload["schema"] = "sdvbs-repro/suite-result/v1"
        del payload["manifest"]
        restored = result_from_dict(payload)
        assert restored.runs[0].total_seconds == 1.5
        assert restored.manifest is None

    def test_v2_payload_still_readable(self):
        payload = result_to_dict(small_result())
        payload["schema"] = "sdvbs-repro/suite-result/v2"
        del payload["manifest"]
        restored = result_from_dict(payload)
        assert restored.runs[0].total_seconds == 1.5
        assert restored.manifest is None

    def test_v5_payload_still_readable(self):
        payload = result_to_dict(small_result())
        payload["schema"] = "sdvbs-repro/suite-result/v5"
        payload.pop("shard", None)
        restored = result_from_dict(payload)
        assert restored.runs[0].total_seconds == 1.5
        assert restored.shard is None

    def test_shard_block_roundtrip(self):
        result = small_result()
        result.shard = {"plan": "abcd1234abcd1234", "shards": 2,
                        "merged_from": [0, 1]}
        restored = result_from_json(result_to_json(result))
        assert restored.shard == result.shard

    def test_job_block_roundtrip(self):
        result = small_result()
        result.job = {"schema": "sdvbs-repro/serve-job/v1",
                      "id": "job-000001", "type": "run",
                      "digest": "ab" * 8, "client": "ci",
                      "priority": "normal"}
        restored = result_from_json(result_to_json(result))
        assert restored.job == result.job

    def test_v7_payload_still_readable(self):
        payload = result_to_dict(small_result())
        payload["schema"] = "sdvbs-repro/suite-result/v7"
        payload.pop("job", None)
        restored = result_from_dict(payload)
        assert restored.runs[0].total_seconds == 1.5
        assert restored.job is None

    def test_manifest_roundtrip(self):
        result = small_result()
        result.manifest = {"schema": "sdvbs-repro/manifest/v1",
                           "argv": ["run", "demo"], "custom": 7}
        restored = result_from_json(result_to_json(result))
        assert restored.manifest == result.manifest

    def test_stats_roundtrip(self):
        from repro.core.types import AggregatedRun, RunStats

        result = small_result()
        run = result.runs[0]
        run.stats = AggregatedRun(
            benchmark=run.benchmark,
            size=run.size,
            variant=run.variant,
            warmup=1,
            total=RunStats.of([1.4, 1.5, 1.6]),
            kernels={"A": RunStats.of([0.9, 1.0, 1.1])},
            kernel_calls=dict(run.kernel_calls),
        )
        payload = result_to_dict(result)
        stats = payload["runs"][0]["stats"]
        assert stats["repeats"] == 3
        for key in ("min", "median", "mean", "stddev", "samples"):
            assert key in stats["total"]
            assert key in stats["kernels"]["A"]
        restored = result_from_json(result_to_json(result))
        assert restored.runs[0].stats.total == run.stats.total
        assert restored.runs[0].stats.kernels == run.stats.kernels
        assert restored.runs[0].stats.warmup == 1

    def test_roundtrip_preserves_timings(self):
        original = small_result()
        restored = result_from_json(result_to_json(original))
        assert len(restored.runs) == 1
        run = restored.runs[0]
        assert run.benchmark == "demo"
        assert run.size == InputSize.QCIF
        assert run.variant == 2
        assert run.total_seconds == 1.5
        assert run.kernel_seconds == {"A": 1.0, "B": 0.25}
        assert run.kernel_calls == {"A": 4, "B": 1}

    def test_occupancy_reconstructable(self):
        restored = result_from_json(result_to_json(small_result()))
        shares = restored.runs[0].occupancy()
        assert shares["A"] == pytest.approx(100.0 * 1.0 / 1.5)

    def test_outputs_stringified(self):
        payload = result_to_dict(small_result())
        assert payload["runs"][0]["outputs"]["metric"] == "0.5"

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            result_from_dict({"schema": "other", "runs": []})

    def test_real_run_roundtrip(self):
        result = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                           variants=[0])
        restored = result_from_json(result_to_json(result))
        assert restored.runs[0].benchmark == "disparity"
        assert restored.mean_total("disparity", InputSize.SQCIF) == \
            pytest.approx(result.mean_total("disparity", InputSize.SQCIF))


class TestCliJson:
    def test_run_json_flag(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(
            ["run", "disparity", "--sizes", "sqcif", "--json"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["runs"][0]["benchmark"] == "disparity"

    def test_run_json_with_repeats_and_jobs(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(
            ["run", "disparity", "--sizes", "sqcif", "--repeats", "2",
             "--warmup", "1", "--jobs", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["runs"][0]["stats"]
        assert stats["warmup"] == 1
        assert stats["repeats"] == 2
        for kernel_stats in stats["kernels"].values():
            for key in ("min", "median", "mean", "stddev", "samples"):
                assert key in kernel_stats


class TestCliCompare:
    def test_compare_two_json_files(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.core import run_suite
        from repro.core.export import result_to_json

        result = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                           variants=[0])
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(result_to_json(result))
        cand.write_text(result_to_json(result))
        assert cli_main(["compare", str(base), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "geometric mean speedup: 1.00x" in out
