"""Tests for the Feature Tracking (KLT) application."""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import sequence
from repro.tracking import (
    BENCHMARK,
    Feature,
    good_features,
    median_motion,
    min_eigenvalue_map,
    select_features,
    structure_tensor_fields,
    track_features,
    track_sequence,
)


def checkerboard(shape=(64, 64), period=8):
    r = np.arange(shape[0])[:, None] // period
    c = np.arange(shape[1])[None, :] // period
    return ((r + c) % 2).astype(np.float64)


class TestStructureTensor:
    def test_fields_shapes(self):
        img = checkerboard()
        sxx, sxy, syy = structure_tensor_fields(img)
        assert sxx.shape == img.shape == sxy.shape == syy.shape

    def test_diagonal_nonnegative(self):
        img = np.random.default_rng(0).random((32, 32))
        sxx, _sxy, syy = structure_tensor_fields(img)
        assert (sxx >= -1e-9).all()
        assert (syy >= -1e-9).all()

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            structure_tensor_fields(checkerboard(), window=4)

    def test_constant_image_zero_tensor(self):
        sxx, sxy, syy = structure_tensor_fields(np.full((24, 24), 0.5))
        assert np.abs(sxx).max() < 1e-12
        assert np.abs(syy).max() < 1e-12


class TestMinEigenvalue:
    def test_matches_explicit_eigensolve(self):
        rng = np.random.default_rng(1)
        sxx = rng.random((3, 3)) + 1.0
        syy = rng.random((3, 3)) + 1.0
        sxy = rng.random((3, 3)) * 0.1
        lam = min_eigenvalue_map(sxx, sxy, syy)
        for r in range(3):
            for c in range(3):
                m = np.array([[sxx[r, c], sxy[r, c]], [sxy[r, c], syy[r, c]]])
                assert lam[r, c] == pytest.approx(
                    np.linalg.eigvalsh(m)[0], abs=1e-10
                )


class TestSelectFeatures:
    def test_corners_found_on_checkerboard(self):
        img = checkerboard()
        feats = good_features(img, max_features=20)
        assert len(feats) > 5
        # Corner rows/cols should sit near multiples of the period.
        for f in feats:
            assert (f.row % 8 < 3) or (f.row % 8 > 5)

    def test_min_distance_respected(self):
        img = checkerboard()
        feats = good_features(img, max_features=30, min_distance=6)
        for i, a in enumerate(feats):
            for b in feats[i + 1 :]:
                assert max(abs(a.row - b.row), abs(a.col - b.col)) > 5

    def test_max_features_cap(self):
        img = checkerboard()
        feats = good_features(img, max_features=4)
        assert len(feats) <= 4

    def test_blank_image_no_features(self):
        assert good_features(np.zeros((32, 32))) == []

    def test_scores_sorted_descending(self):
        img = checkerboard()
        feats = good_features(img, max_features=10)
        scores = [f.score for f in feats]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_max_features(self):
        with pytest.raises(ValueError):
            select_features(np.ones((8, 8)), max_features=0)


class TestTracking:
    def test_recovers_integer_shift(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=2)
        feats = good_features(seq.frames[0], max_features=30)
        tracks = track_features(seq.frames[0], seq.frames[1], feats)
        converged = [t for t in tracks if t.converged]
        assert len(converged) > len(tracks) // 2
        dy, dx = median_motion(converged)
        assert dy == pytest.approx(seq.true_motion[0], abs=0.1)
        assert dx == pytest.approx(seq.true_motion[1], abs=0.1)

    def test_zero_motion(self):
        img = checkerboard()
        feats = good_features(img, max_features=10)
        tracks = track_features(img, img, feats)
        for t in tracks:
            if t.converged:
                assert abs(t.motion[0]) < 0.05
                assert abs(t.motion[1]) < 0.05

    def test_track_sequence_pairs(self):
        seq = sequence(InputSize.SQCIF, 1, n_frames=4)
        all_tracks = track_sequence(seq.frames, max_features=16)
        assert len(all_tracks) == 3

    def test_sequence_needs_two_frames(self):
        with pytest.raises(ValueError):
            track_sequence([np.ones((16, 16))])

    def test_frame_shape_mismatch(self):
        with pytest.raises(ValueError):
            track_features(np.ones((8, 8)), np.ones((8, 9)), [])

    def test_median_motion_empty(self):
        with pytest.raises(ValueError):
            median_motion([])


class TestBenchmarkWiring:
    def test_run_recovers_motion(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["converged"] > 0
        dy, dx = out["median_motion"]
        true_dy, true_dx = out["true_motion"]
        assert abs(dy - true_dy) < 0.25
        assert abs(dx - true_dx) < 0.25
        for kernel in ("Gradient", "GaussianFilter", "IntegralImage",
                       "AreaSum", "MatrixInversion"):
            assert kernel in profiler.kernel_seconds

    def test_parallelism_ordering(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        # Matrix inversion tops tracking's Table IV rows.
        assert rows["MatrixInversion"].parallelism > \
            rows["Gradient"].parallelism
        assert rows["IntegralImage"].parallelism > rows["Gradient"].parallelism
