"""Unit and property tests for integral images and window sums."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.imgproc.integral import (
    integral_image,
    rect_sum,
    squared_integral_image,
    window_means,
    window_sums,
    window_variances,
)

images = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 14), st.integers(3, 14)),
    elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
)


class TestIntegralImage:
    def test_shape_has_zero_border(self):
        ii = integral_image(np.ones((4, 6)))
        assert ii.shape == (5, 7)
        assert (ii[0, :] == 0).all()
        assert (ii[:, 0] == 0).all()

    def test_corner_is_total(self):
        img = np.random.default_rng(0).random((5, 7))
        ii = integral_image(img)
        assert ii[-1, -1] == pytest.approx(img.sum())

    @given(images)
    def test_rect_sum_matches_slice(self, img):
        ii = integral_image(img)
        rows, cols = img.shape
        r0, r1 = 1, rows - 1
        c0, c1 = 1, cols - 1
        assert rect_sum(ii, r0, c0, r1, c1) == pytest.approx(
            img[r0:r1, c0:c1].sum(), abs=1e-8
        )

    @given(images)
    def test_full_rect_is_total(self, img):
        ii = integral_image(img)
        assert rect_sum(ii, 0, 0, *img.shape) == pytest.approx(
            img.sum(), abs=1e-8
        )

    def test_empty_rect_zero(self):
        ii = integral_image(np.ones((4, 4)))
        assert rect_sum(ii, 2, 2, 2, 2) == 0.0

    def test_out_of_range_raises(self):
        ii = integral_image(np.ones((4, 4)))
        with pytest.raises(IndexError):
            rect_sum(ii, 0, 0, 6, 2)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            integral_image(np.ones(5))

    def test_squared_variant(self):
        img = np.array([[1.0, 2.0], [3.0, 4.0]])
        ii2 = squared_integral_image(img)
        assert ii2[-1, -1] == pytest.approx(1 + 4 + 9 + 16)


class TestWindowSums:
    @given(images, st.integers(1, 3))
    def test_matches_bruteforce(self, img, win):
        rows, cols = img.shape
        if win > rows or win > cols:
            return
        out = window_sums(img, win)
        assert out.shape == (rows - win + 1, cols - win + 1)
        for r in range(0, out.shape[0], max(1, out.shape[0] // 3)):
            for c in range(0, out.shape[1], max(1, out.shape[1] // 3)):
                assert out[r, c] == pytest.approx(
                    img[r : r + win, c : c + win].sum(), abs=1e-8
                )

    def test_window_of_one_is_identity(self):
        img = np.random.default_rng(1).random((5, 5))
        assert np.allclose(window_sums(img, 1), img)

    def test_window_too_large(self):
        with pytest.raises(ValueError):
            window_sums(np.ones((4, 4)), 5)

    def test_window_nonpositive(self):
        with pytest.raises(ValueError):
            window_sums(np.ones((4, 4)), 0)

    def test_means(self):
        img = np.full((6, 6), 2.0)
        assert np.allclose(window_means(img, 3), 2.0)

    @given(images)
    def test_variances_nonnegative(self, img):
        var = window_variances(img, 3)
        assert (var >= 0).all()

    def test_variance_of_constant_zero(self):
        assert np.allclose(window_variances(np.full((6, 6), 3.0), 3), 0.0)

    def test_variance_matches_numpy(self):
        img = np.random.default_rng(2).random((8, 8))
        var = window_variances(img, 3)
        assert var[2, 4] == pytest.approx(img[2:5, 4:7].var(), abs=1e-10)
