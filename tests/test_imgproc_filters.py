"""Unit tests for Gaussian/binomial filters, gradients and color helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.imgproc.color import gray_to_rgb, normalize, rgb_to_gray, standardize
from repro.imgproc.filters import (
    binomial_blur,
    binomial_kernel,
    difference_of_gaussians,
    gaussian_blur,
    gaussian_kernel,
)
from repro.imgproc.gradient import (
    gradient,
    gradient_magnitude_angle,
    sobel,
)

images = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(6, 16), st.integers(6, 16)),
    elements=st.floats(0, 1, allow_nan=False),
)


class TestGaussianKernel:
    def test_normalized(self):
        assert gaussian_kernel(1.3).sum() == pytest.approx(1.0)

    def test_symmetric(self):
        k = gaussian_kernel(2.0)
        assert np.allclose(k, k[::-1])

    def test_default_radius_three_sigma(self):
        assert gaussian_kernel(1.0).size == 7  # radius 3

    def test_explicit_radius(self):
        assert gaussian_kernel(1.0, radius=5).size == 11

    def test_monotone_from_center(self):
        k = gaussian_kernel(1.5)
        mid = k.size // 2
        assert (np.diff(k[: mid + 1]) > 0).all()

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel(0.0)
        with pytest.raises(ValueError):
            gaussian_kernel(1.0, radius=-1)


class TestBinomialKernel:
    def test_order5_matches_suite(self):
        assert np.allclose(binomial_kernel(5) * 16,
                           [1.0, 4.0, 6.0, 4.0, 1.0])

    def test_even_order_rejected(self):
        with pytest.raises(ValueError):
            binomial_kernel(4)


class TestBlur:
    @given(images)
    def test_mean_preserved(self, img):
        out = gaussian_blur(img, 1.0)
        # Replicate borders keep the value range; mean drifts only
        # slightly at borders.
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9

    def test_reduces_variance_of_noise(self):
        rng = np.random.default_rng(0)
        noise = rng.standard_normal((64, 64))
        assert gaussian_blur(noise, 2.0).std() < 0.5 * noise.std()

    def test_constant_fixed_point(self):
        img = np.full((10, 10), 0.42)
        assert np.allclose(gaussian_blur(img, 1.7), img)
        assert np.allclose(binomial_blur(img), img)

    def test_larger_sigma_smoother(self):
        rng = np.random.default_rng(1)
        noise = rng.standard_normal((48, 48))
        assert gaussian_blur(noise, 3.0).std() < gaussian_blur(noise, 1.0).std()

    def test_dog_requires_ordering(self):
        with pytest.raises(ValueError):
            difference_of_gaussians(np.ones((8, 8)), 2.0, 1.0)

    def test_dog_zero_on_constant(self):
        img = np.full((12, 12), 0.5)
        assert np.allclose(difference_of_gaussians(img, 1.0, 2.0), 0.0)


class TestGradient:
    def test_linear_ramp_exact(self):
        cols = np.arange(10, dtype=np.float64)
        img = np.tile(cols, (8, 1))
        gx, gy = gradient(img)
        assert np.allclose(gx[:, 1:-1], 1.0)
        assert np.allclose(gy, 0.0)

    def test_vertical_ramp(self):
        rows = np.arange(9, dtype=np.float64)
        img = np.tile(rows[:, None], (1, 7))
        gx, gy = gradient(img)
        assert np.allclose(gy[1:-1, :], 1.0)
        assert np.allclose(gx, 0.0)

    def test_sobel_direction(self):
        cols = np.arange(10, dtype=np.float64)
        img = np.tile(cols, (8, 1))
        gx, gy = sobel(img)
        assert gx[4, 4] > 0
        assert abs(gy[4, 4]) < 1e-9

    def test_magnitude_angle(self):
        cols = np.arange(10, dtype=np.float64)
        img = np.tile(cols, (8, 1))
        mag, ang = gradient_magnitude_angle(img)
        assert mag[4, 4] == pytest.approx(1.0)
        assert ang[4, 4] == pytest.approx(0.0)  # pointing +x

    @given(images)
    def test_constant_has_zero_gradient(self, img):
        const = np.full_like(img, float(img.mean()))
        gx, gy = gradient(const)
        assert np.allclose(gx, 0.0) and np.allclose(gy, 0.0)


class TestColor:
    def test_rgb_to_gray_weights(self):
        rgb = np.zeros((2, 2, 3))
        rgb[..., 1] = 1.0  # pure green
        assert np.allclose(rgb_to_gray(rgb), 0.587)

    def test_roundtrip_gray(self):
        gray = np.random.default_rng(0).random((4, 5))
        assert np.allclose(rgb_to_gray(gray_to_rgb(gray)), gray)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            rgb_to_gray(np.ones((4, 4)))
        with pytest.raises(ValueError):
            gray_to_rgb(np.ones((4, 4, 3)))

    def test_normalize_range(self):
        img = np.array([[1.0, 3.0], [5.0, 9.0]])
        out = normalize(img)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_normalize_constant(self):
        assert np.allclose(normalize(np.full((3, 3), 7.0)), 0.0)

    def test_standardize(self):
        img = np.random.default_rng(1).random((8, 8))
        out = standardize(img)
        assert out.mean() == pytest.approx(0.0, abs=1e-12)
        assert out.std() == pytest.approx(1.0)

    def test_standardize_constant(self):
        assert np.allclose(standardize(np.full((3, 3), 2.0)), 0.0)
