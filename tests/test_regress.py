"""Tests for noise-aware regression detection and the ``regress`` CLI."""

import json

import pytest

from repro.core.export import result_to_json
from repro.core.history import SqliteHistory
from repro.core.regress import (
    REGRESS_SCHEMA,
    STATUS_IMPROVED,
    STATUS_INSUFFICIENT,
    STATUS_OK,
    STATUS_REGRESSION,
    STATUS_WITHIN_NOISE,
    cells_from_entries,
    cells_from_result,
    detect_regressions,
    render_regressions,
    report_to_dict,
    report_to_json,
)
from repro.core.types import (
    AggregatedRun,
    BenchmarkRun,
    InputSize,
    RunStats,
    SuiteResult,
)


def make_result(total=1.0, noise=0.01, benchmark="demo",
                size=InputSize.QCIF):
    """One-cell result: median ``total`` with repeat stddev ~``noise``."""
    run = BenchmarkRun(
        benchmark=benchmark,
        size=size,
        variant=0,
        total_seconds=total,
        kernel_seconds={"A": total / 2},
        kernel_calls={"A": 1},
    )
    if noise is not None:
        samples = [total - noise, total, total + noise]
        run.stats = AggregatedRun(
            benchmark=benchmark,
            size=size,
            variant=0,
            warmup=1,
            total=RunStats.of(samples),
            kernels={"A": RunStats.of([s / 2 for s in samples])},
            kernel_calls={"A": 1},
        )
    result = SuiteResult()
    result.runs.append(run)
    return result


def cell_map(median, stddev, benchmark="demo", size="QCIF"):
    return {(benchmark, size): (median, stddev)}


class TestCells:
    def test_cells_from_result(self):
        cells = cells_from_result(make_result(total=1.0, noise=0.01))
        assert ("demo", "QCIF") in cells
        median, stddev = cells[("demo", "QCIF")]
        assert median == pytest.approx(1.0)
        assert stddev is not None and stddev > 0

    def test_statless_result_has_none_stddev(self):
        cells = cells_from_result(make_result(noise=None))
        assert cells[("demo", "QCIF")][1] is None

    def test_cells_from_entries_latest_wins(self):
        from repro.core.history import entries_from_result

        old = entries_from_result(make_result(total=1.0), commit="c1")
        new = entries_from_result(make_result(total=2.0), commit="c1")
        cells = cells_from_entries(old + new)
        assert cells[("demo", "QCIF")][0] == pytest.approx(2.0)


class TestClassification:
    def test_identical_cells_are_ok(self):
        report = detect_regressions(cell_map(1.0, 0.01), cell_map(1.0, 0.01))
        assert [e.status for e in report.entries] == [STATUS_OK]
        assert report.exit_code == 0

    def test_large_significant_slowdown_is_regression(self):
        report = detect_regressions(cell_map(1.0, 0.01),
                                    cell_map(1.5, 0.01))
        entry = report.entries[0]
        assert entry.status == STATUS_REGRESSION
        assert entry.relative_change == pytest.approx(0.5)
        assert report.exit_code == 1

    def test_shift_inside_noise_band_passes(self):
        # 5% slower but noise is ±10%: not statistically resolvable.
        report = detect_regressions(cell_map(1.0, 0.10),
                                    cell_map(1.05, 0.10))
        assert report.entries[0].status == STATUS_WITHIN_NOISE
        assert report.exit_code == 0

    def test_significant_but_small_shift_passes(self):
        # 5% slower, significant at >2 sigma, but below the 10% gate.
        report = detect_regressions(cell_map(1.0, 0.001),
                                    cell_map(1.05, 0.001))
        assert report.entries[0].status == STATUS_WITHIN_NOISE
        assert report.exit_code == 0

    def test_large_significant_speedup_is_improved(self):
        report = detect_regressions(cell_map(1.5, 0.01),
                                    cell_map(1.0, 0.01))
        assert report.entries[0].status == STATUS_IMPROVED
        assert report.exit_code == 0

    def test_unknown_noise_is_insufficient_not_regression(self):
        report = detect_regressions(cell_map(1.0, None),
                                    cell_map(2.0, None))
        assert report.entries[0].status == STATUS_INSUFFICIENT
        assert report.exit_code == 0

    def test_one_sided_noise_is_insufficient(self):
        report = detect_regressions(cell_map(1.0, 0.01),
                                    cell_map(2.0, None))
        assert report.entries[0].status == STATUS_INSUFFICIENT

    def test_unknown_noise_identical_medians_ok(self):
        report = detect_regressions(cell_map(1.0, None),
                                    cell_map(1.0, None))
        assert report.entries[0].status == STATUS_OK

    def test_thresholds_are_tunable(self):
        baseline, candidate = cell_map(1.0, 0.01), cell_map(1.05, 0.01)
        strict = detect_regressions(baseline, candidate, min_slowdown=0.02)
        assert strict.entries[0].status == STATUS_REGRESSION
        lax = detect_regressions(cell_map(1.0, 0.01), cell_map(1.5, 0.01),
                                 sigmas=1000.0)
        assert lax.entries[0].status == STATUS_WITHIN_NOISE

    def test_disjoint_cells_are_skipped(self):
        report = detect_regressions(cell_map(1.0, 0.01),
                                    cell_map(1.0, 0.01, benchmark="other"))
        assert report.entries == []
        assert report.exit_code == 0


class TestRendering:
    def test_regression_summary_line(self):
        report = detect_regressions(cell_map(1.0, 0.01), cell_map(1.5, 0.01))
        text = render_regressions(report)
        assert "REGRESSION: 1 cell(s) flagged" in text
        assert "demo@QCIF" in text
        assert "+50.0%" in text

    def test_clean_summary_line(self):
        report = detect_regressions(cell_map(1.0, 0.01), cell_map(1.0, 0.01))
        assert "no confirmed regressions" in render_regressions(report)

    def test_empty_report(self):
        report = detect_regressions({}, {})
        assert "no comparable cells" in render_regressions(report)

    def test_json_verdict_shape(self):
        report = detect_regressions(cell_map(1.0, 0.01), cell_map(1.5, 0.01))
        payload = json.loads(report_to_json(report))
        assert payload["schema"] == REGRESS_SCHEMA
        assert payload["exit_code"] == 1
        assert payload["regression_count"] == 1
        assert payload["cells"][0]["status"] == STATUS_REGRESSION
        assert payload == report_to_dict(report)


class TestCliRegress:
    def _write(self, path, result):
        path.write_text(result_to_json(result))
        return str(path)

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        export = self._write(tmp_path / "r.json", make_result())
        assert cli_main(["regress", export, "--against", export]) == 0
        assert "no confirmed regressions" in capsys.readouterr().out

    def test_injected_slowdown_exits_one(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        base = self._write(tmp_path / "base.json", make_result(total=1.0))
        slow = self._write(tmp_path / "slow.json",
                           make_result(total=1.5))
        assert cli_main(["regress", slow, "--against", base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_history_baseline_path(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "history.sqlite")
        with SqliteHistory(db) as store:
            store.record(make_result(total=1.0), commit="baseline-commit")
        slow = self._write(tmp_path / "slow.json", make_result(total=1.5))
        assert cli_main(["regress", slow, "--db", db,
                         "--commit", "candidate-commit"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_explicit_baseline_commit(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "history.sqlite")
        with SqliteHistory(db) as store:
            store.record(make_result(total=1.0), commit="good")
            store.record(make_result(total=1.5), commit="bad")
        cand = self._write(tmp_path / "c.json", make_result(total=1.5))
        assert cli_main(["regress", cand, "--db", db, "--commit", "head",
                         "--baseline-commit", "good"]) == 1
        capsys.readouterr()
        assert cli_main(["regress", cand, "--db", db, "--commit", "head",
                         "--baseline-commit", "bad"]) == 0

    def test_empty_history_is_soft_pass(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "empty.sqlite")
        cand = self._write(tmp_path / "c.json", make_result())
        assert cli_main(["regress", cand, "--db", db,
                         "--commit", "head"]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_unknown_explicit_baseline_fails(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "h.sqlite")
        with SqliteHistory(db) as store:
            store.record(make_result(), commit="c1")
        cand = self._write(tmp_path / "c.json", make_result())
        assert cli_main(["regress", cand, "--db", db, "--commit", "head",
                         "--baseline-commit", "ghost"]) == 2

    def test_json_out(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        base = self._write(tmp_path / "base.json", make_result(total=1.0))
        slow = self._write(tmp_path / "slow.json", make_result(total=1.5))
        verdict = tmp_path / "verdict.json"
        assert cli_main(["regress", slow, "--against", base,
                         "--json-out", str(verdict)]) == 1
        payload = json.loads(verdict.read_text())
        assert payload["schema"] == REGRESS_SCHEMA
        assert payload["exit_code"] == 1

    def test_tunable_gates(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        base = self._write(tmp_path / "base.json", make_result(total=1.0))
        slow = self._write(tmp_path / "slow.json", make_result(total=1.05))
        assert cli_main(["regress", slow, "--against", base]) == 0
        capsys.readouterr()
        assert cli_main(["regress", slow, "--against", base,
                         "--min-slowdown", "0.02"]) == 1

    def test_missing_candidate_fails(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        missing = str(tmp_path / "nope.json")
        assert cli_main(["regress", missing,
                         "--db", str(tmp_path / "h.sqlite")]) == 2


def make_sampled_result(total=1.0, noise=0.01, kernel_scale=1.0):
    """A regressable result whose run also carries a sampling profile."""
    from repro.core.sampling import SampledProfile

    result = make_result(total=total, noise=noise)
    profile = SampledProfile(
        interval=0.001,
        samples=20,
        folded={("main", "ssd"): 0.004 * kernel_scale,
                ("main", "sort"): 0.002},
        kernel_seconds={"SSD": 0.004 * kernel_scale, "Sort": 0.002},
        observable=("SSD", "Sort"),
    )
    result.runs[0].sampling = profile.to_dict()
    result.manifest = {
        "schema": "sdvbs-repro/manifest/v1",
        "created": "2026-08-06T00:00:00",
        "measurement": {"backend": "fast", "repeats": 3},
    }
    return result


class TestCliAttribute:
    def _write(self, path, result):
        path.write_text(result_to_json(result))
        return str(path)

    def test_export_vs_export_names_guilty_kernel(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        base = self._write(tmp_path / "base.json",
                           make_sampled_result(total=1.0))
        slow = self._write(tmp_path / "slow.json",
                           make_sampled_result(total=1.5, kernel_scale=1.5))
        verdict = tmp_path / "verdict.json"
        assert cli_main(["regress", slow, "--against", base,
                         "--attribute", "--json-out", str(verdict)]) == 1
        out = capsys.readouterr().out
        assert "attribution" in out and "SSD" in out
        payload = json.loads(verdict.read_text())
        cell = payload["cells"][0]
        assert cell["status"] == STATUS_REGRESSION
        attribution = cell["attribution"]
        assert attribution["kernels"][0]["kernel"] == "SSD"
        assert attribution["kernels"][0]["share_of_delta"] == \
            pytest.approx(1.0)

    def test_attribute_without_profiles_warns(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        base = self._write(tmp_path / "base.json", make_result(total=1.0))
        slow = self._write(tmp_path / "slow.json", make_result(total=1.5))
        verdict = tmp_path / "verdict.json"
        assert cli_main(["regress", slow, "--against", base,
                         "--attribute", "--json-out", str(verdict)]) == 1
        assert "no profile pair" in capsys.readouterr().err
        cell = json.loads(verdict.read_text())["cells"][0]
        assert "attribution" not in cell

    def test_history_mode_attributes_from_store(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.core.profstore import open_profiles

        db = str(tmp_path / "history.sqlite")
        profiles = str(tmp_path / "profiles.sqlite")
        baseline = make_sampled_result(total=1.0)
        with SqliteHistory(db) as store:
            store.record(baseline, commit="good-commit")
        with open_profiles(profiles) as store:
            store.record(baseline, commit="good-commit")
        slow = self._write(tmp_path / "slow.json",
                           make_sampled_result(total=1.5, kernel_scale=1.5))
        verdict = tmp_path / "verdict.json"
        assert cli_main(["regress", slow, "--db", db,
                         "--commit", "bad-commit", "--attribute",
                         "--profiles", profiles,
                         "--json-out", str(verdict)]) == 1
        cell = json.loads(verdict.read_text())["cells"][0]
        assert cell["attribution"]["kernels"][0]["kernel"] == "SSD"

    def test_attribute_on_clean_run_is_silent_noop(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        export = self._write(tmp_path / "r.json", make_sampled_result())
        assert cli_main(["regress", export, "--against", export,
                         "--attribute"]) == 0
        assert "no profile pair" not in capsys.readouterr().err
