"""Tests for the persistent profile store and its CLI."""

import itertools
import json

import pytest

from repro.core.history import manifest_hash
from repro.core.profstore import (
    PROFILE_SCHEMA,
    JsonlProfiles,
    ProfileEntry,
    SqliteProfiles,
    cell_profiles,
    entries_from_result,
    open_profiles,
    pair_lookup_from_results,
    pair_lookup_from_store,
)
from repro.core.sampling import SampledProfile
from repro.core.types import BenchmarkRun, InputSize, SuiteResult


def make_profile_dict(scale=1.0, samples=40):
    """A small but realistic SampledProfile.to_dict payload."""
    profile = SampledProfile(
        interval=0.0002,
        samples=samples,
        folded={("main", "dispatch", "ssd"): 0.004 * scale,
                ("main", "dispatch", "sort"): 0.002},
        kernel_seconds={"SSD": 0.004 * scale, "Sort": 0.002},
        observable=("SSD", "Sort"),
    )
    return profile.to_dict()


def make_result(scale=1.0, backend="fast", created="2026-08-06T00:00:00",
                sampled=True):
    """A one-cell sampled suite result (demo@QCIF)."""
    run = BenchmarkRun(
        benchmark="demo",
        size=InputSize.QCIF,
        variant=0,
        total_seconds=0.01 * scale,
        kernel_seconds={"SSD": 0.004 * scale, "Sort": 0.002},
        kernel_calls={"SSD": 1, "Sort": 1},
    )
    if sampled:
        run.sampling = make_profile_dict(scale=scale)
    result = SuiteResult()
    result.runs.append(run)
    result.manifest = {
        "schema": "sdvbs-repro/manifest/v1",
        "created": created,
        "measurement": {"backend": backend, "repeats": 3},
    }
    return result


def make_entry(commit="aaa", benchmark="demo", size="QCIF", backend="fast",
               digest="deadbeef00000000", created="2026-08-06T00:00:00",
               scale=1.0):
    return ProfileEntry(
        commit=commit, benchmark=benchmark, size=size, backend=backend,
        manifest_hash=digest, created=created,
        profile=make_profile_dict(scale=scale),
    )


class TestEntriesFromResult:
    def test_one_entry_per_sampled_cell(self):
        entries = entries_from_result(make_result(), commit="abc123")
        assert len(entries) == 1
        entry = entries[0]
        assert entry.commit == "abc123"
        assert entry.benchmark == "demo"
        assert entry.size == "QCIF"
        assert entry.backend == "fast"
        assert entry.created == "2026-08-06T00:00:00"
        assert entry.manifest_hash == manifest_hash(
            make_result().manifest)
        assert entry.samples == 40

    def test_unsampled_result_yields_nothing(self):
        assert entries_from_result(make_result(sampled=False),
                                   commit="abc123") == []

    def test_variants_of_one_cell_merge(self):
        result = make_result()
        second = BenchmarkRun(
            benchmark="demo", size=InputSize.QCIF, variant=1,
            total_seconds=0.01,
            kernel_seconds={"SSD": 0.004, "Sort": 0.002},
            kernel_calls={"SSD": 1, "Sort": 1},
        )
        second.sampling = make_profile_dict(samples=10)
        result.runs.append(second)
        entries = entries_from_result(result, commit="abc123")
        assert len(entries) == 1
        assert entries[0].samples == 50

    def test_round_trips_through_sampled_profile(self):
        entries = entries_from_result(make_result(), commit="abc123")
        profile = entries[0].sampled_profile()
        assert profile.kernel_seconds["SSD"] == pytest.approx(0.004)
        assert profile.samples == 40


class TestMergeOrderIndependence:
    def test_merged_is_commutative(self):
        parts = [
            SampledProfile(interval=0.0002, samples=10,
                           folded={("m", "a"): 0.001},
                           kernel_seconds={"A": 0.001},
                           observable=("A",)),
            SampledProfile(interval=0.0005, samples=20,
                           folded={("m", "a"): 0.002, ("m", "b"): 0.003},
                           kernel_seconds={"A": 0.002, "B": 0.003},
                           observable=("B",)),
            SampledProfile(interval=0.0002, samples=5,
                           folded={("m", "b"): 0.004},
                           kernel_seconds={"B": 0.004},
                           observable=("A", "B")),
        ]
        payloads = []
        for order in itertools.permutations(range(3)):
            merged = SampledProfile.merged(parts[i] for i in order)
            payloads.append(json.dumps(merged.to_dict(), sort_keys=True))
        assert len(set(payloads)) == 1
        merged = SampledProfile.merged(parts)
        assert merged.samples == 35
        assert merged.interval == pytest.approx(0.0002)
        assert merged.folded[("m", "a")] == pytest.approx(0.003)
        assert merged.kernel_seconds["B"] == pytest.approx(0.007)


@pytest.fixture(params=["profiles.sqlite", "profiles.jsonl"])
def store(request, tmp_path):
    with open_profiles(str(tmp_path / request.param)) as opened:
        yield opened


class TestStoreRoundTrip:
    def test_backend_selection(self, tmp_path):
        sqlite_store = open_profiles(str(tmp_path / "p.sqlite"))
        jsonl_store = open_profiles(str(tmp_path / "p.jsonl"))
        try:
            assert isinstance(sqlite_store, SqliteProfiles)
            assert isinstance(jsonl_store, JsonlProfiles)
        finally:
            sqlite_store.close()
            jsonl_store.close()

    def test_record_and_read_back_exact(self, store):
        entry = make_entry()
        assert store.record_entries([entry]) == [entry]
        stored = store.entries()
        assert len(stored) == 1
        assert stored[0] == entry
        assert stored[0].profile == entry.profile

    def test_reopen_persists(self, store):
        store.record_entries([make_entry()])
        with open_profiles(store.path) as reopened:
            assert len(reopened.entries()) == 1

    def test_duplicate_key_is_noop(self, store):
        entry = make_entry()
        store.record_entries([entry])
        assert store.record_entries([make_entry(scale=9.0)]) == []
        assert len(store.entries()) == 1
        # First recording wins — the payload was not overwritten.
        assert store.entries()[0].profile == entry.profile

    def test_record_result_is_idempotent(self, store):
        result = make_result()
        assert len(store.record(result, commit="aaa")) == 1
        assert store.record(result, commit="aaa") == []
        assert len(store.entries()) == 1

    def test_filters(self, store):
        store.record_entries([
            make_entry(commit="aaa"),
            make_entry(commit="bbb"),
            make_entry(commit="bbb", benchmark="mser"),
            make_entry(commit="bbb", backend="ref"),
        ])
        assert len(store.entries(commit="bbb")) == 3
        assert len(store.entries(commit="bbb", benchmark="demo")) == 2
        assert len(store.entries(backend="ref")) == 1
        assert store.entries(commit="zzz") == []

    def test_commits_first_recorded_order(self, store):
        store.record_entries([
            make_entry(commit="bbb"),
            make_entry(commit="aaa"),
            make_entry(commit="bbb", benchmark="mser"),
        ])
        assert store.commits() == ["bbb", "aaa"]

    def test_latest_commit_before_by_created(self, store):
        store.record_entries([
            make_entry(commit="old", created="2026-08-01T00:00:00"),
            make_entry(commit="new", created="2026-08-05T00:00:00"),
        ])
        assert store.latest_commit_before("head") == "new"
        assert store.latest_commit_before("new") == "old"

    def test_latest_commit_before_empty(self, store):
        assert store.latest_commit_before("head") is None

    def test_latest_profile_picks_newest(self, store):
        store.record_entries([
            make_entry(digest="d1", created="2026-08-01T00:00:00",
                       scale=1.0),
            make_entry(digest="d2", created="2026-08-05T00:00:00",
                       scale=2.0),
        ])
        latest = store.latest_profile("aaa", "demo", "QCIF")
        assert latest is not None
        assert latest.manifest_hash == "d2"
        assert store.latest_profile("aaa", "demo", "CIF") is None
        assert store.latest_profile("aaa", "demo", "QCIF",
                                    backend="ref") is None


class TestJsonlFormat:
    def test_lines_are_schema_stamped(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        with open_profiles(path) as store:
            store.record_entries([make_entry()])
        with open(path, encoding="utf-8") as handle:
            payload = json.loads(handle.readline())
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["commit"] == "aaa"

    def test_corrupt_lines_skipped(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        with open_profiles(path) as store:
            store.record_entries([make_entry()])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n{\"schema\": \"half\n")
        with open_profiles(path) as store:
            assert len(store.entries()) == 1


class TestPairLookups:
    def test_from_results_requires_both_sides(self):
        lookup = pair_lookup_from_results(make_result(),
                                          make_result(scale=3.0))
        pair = lookup("demo", "QCIF")
        assert pair is not None
        base, cand = pair
        assert cand.kernel_seconds["SSD"] == \
            pytest.approx(3 * base.kernel_seconds["SSD"])
        assert lookup("demo", "CIF") is None
        assert lookup("mser", "QCIF") is None

    def test_from_results_unsampled_side_yields_none(self):
        lookup = pair_lookup_from_results(make_result(sampled=False),
                                          make_result())
        assert lookup("demo", "QCIF") is None

    def test_from_store(self, store):
        store.record_entries([
            make_entry(commit="aaa", scale=1.0),
            make_entry(commit="bbb", scale=3.0),
        ])
        lookup = pair_lookup_from_store(store, "aaa", "bbb")
        pair = lookup("demo", "QCIF")
        assert pair is not None
        base, cand = pair
        assert cand.kernel_seconds["SSD"] == \
            pytest.approx(3 * base.kernel_seconds["SSD"])
        assert lookup("demo", "CIF") is None
        miss = pair_lookup_from_store(store, "aaa", "zzz")
        assert miss("demo", "QCIF") is None


class TestCellProfiles:
    def test_empty_for_unsampled(self):
        assert cell_profiles(make_result(sampled=False)) == {}

    def test_keyed_by_benchmark_and_size_name(self):
        cells = cell_profiles(make_result())
        assert set(cells) == {("demo", "QCIF")}
        assert cells[("demo", "QCIF")].samples == 40


class TestCliProfile:
    def _write(self, path, result):
        from repro.core.export import result_to_json

        path.write_text(result_to_json(result))
        return str(path)

    def test_record_list_show(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "profiles.sqlite")
        export = self._write(tmp_path / "r.json", make_result())
        assert cli_main(["profile", "record", export, "--db", db,
                         "--commit", "aaaa000"]) == 0
        out = capsys.readouterr().out
        assert "recorded 1 new profile(s)" in out

        assert cli_main(["profile", "list", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "aaaa000" in out and "demo" in out

        assert cli_main(["profile", "show", "aaaa", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "demo" in out and "QCIF" in out and "SSD" in out

    def test_record_unsampled_export_exits_two(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "profiles.sqlite")
        export = self._write(tmp_path / "r.json",
                             make_result(sampled=False))
        assert cli_main(["profile", "record", export, "--db", db,
                         "--commit", "aaaa000"]) == 2
        assert "no sampling payloads" in capsys.readouterr().err

    def test_record_warns_on_truncated_stacks(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        result = make_result()
        result.runs[0].sampling["stacks_truncated"] = 7
        db = str(tmp_path / "profiles.sqlite")
        export = self._write(tmp_path / "r.json", result)
        assert cli_main(["profile", "record", export, "--db", db,
                         "--commit", "aaaa000"]) == 0
        assert "stack(s) dropped" in capsys.readouterr().err

    def test_show_unknown_and_ambiguous_prefix(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "profiles.sqlite")
        with open_profiles(db) as store:
            store.record_entries([make_entry(commit="abc111"),
                                  make_entry(commit="abc222")])
        assert cli_main(["profile", "show", "zzz", "--db", db]) == 2
        capsys.readouterr()
        assert cli_main(["profile", "show", "abc", "--db", db]) == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_diff_renders_and_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.core.flamediff import FLAMEDIFF_SCHEMA

        db = str(tmp_path / "profiles.sqlite")
        base = self._write(tmp_path / "base.json", make_result(scale=1.0))
        slow = self._write(tmp_path / "slow.json", make_result(scale=3.0))
        assert cli_main(["profile", "record", base, "--db", db,
                         "--commit", "aaaa000"]) == 0
        assert cli_main(["profile", "record", slow, "--db", db,
                         "--commit", "bbbb111"]) == 0
        capsys.readouterr()

        out_path = tmp_path / "diff.collapsed"
        html_path = tmp_path / "diff.html"
        json_path = tmp_path / "diff.json"
        assert cli_main(["profile", "diff", "aaaa", "bbbb",
                         "--benchmark", "demo", "--size", "qcif",
                         "--db", db,
                         "--out", str(out_path),
                         "--html", str(html_path),
                         "--json-out", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "SSD" in out

        assert "+8000" in out_path.read_text()
        html = html_path.read_text()
        assert "flamediff" in html and "SSD" in html
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == FLAMEDIFF_SCHEMA
        assert payload["kernels"][0]["kernel"] == "SSD"

    def test_diff_missing_cell_exits_two(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        db = str(tmp_path / "profiles.sqlite")
        with open_profiles(db) as store:
            store.record_entries([make_entry(commit="aaaa000"),
                                  make_entry(commit="bbbb111")])
        assert cli_main(["profile", "diff", "aaaa", "bbbb",
                         "--benchmark", "mser", "--size", "qcif",
                         "--db", db]) == 2
        assert "no profile" in capsys.readouterr().err
