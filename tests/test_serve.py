"""Tests for the benchmark service: jobs, admission control, JSON-RPC.

The admission-control tests inject a gated executor so queue depth is
under test control; the round-trip tests run the real executors on the
smallest input (disparity @ SQCIF) against a live in-process
ThreadingHTTPServer on an ephemeral port.
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.history import open_history
from repro.core.jobs import (
    JobManager,
    NotCancellableError,
    QueueFullError,
    RateLimitedError,
    SpecError,
    TokenBucket,
    UnknownJobError,
    spec_digest,
    validate_spec,
)
from repro.core.serve import (
    INVALID_PARAMS,
    INVALID_REQUEST,
    JOB_NOT_DONE,
    METHOD_NOT_FOUND,
    NOT_CANCELLABLE,
    PARSE_ERROR,
    QUEUE_FULL,
    RATE_LIMITED,
    UNKNOWN_JOB,
    BenchServer,
    make_server,
)

RUN_SPEC = {"type": "run", "benchmarks": ["disparity"], "sizes": ["SQCIF"],
            "repeats": 1}


def wait_for(manager, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = manager.status(job_id)
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish: "
                         f"{manager.status(job_id)}")


class GatedExecutor:
    """Executor that blocks until released, counting executions."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, job, manager):
        with self._lock:
            self.calls += 1
        self.gate.wait(timeout=30.0)
        return {"ok": True, "digest": job.digest}, {}


# ----------------------------------------------------------------------
# Spec validation and canonical digests


class TestSpecs:
    def test_run_spec_fills_defaults(self):
        spec = validate_spec({"type": "run", "benchmarks": ["disparity"]})
        assert spec["sizes"] == ["SQCIF", "QCIF", "CIF"]
        assert spec["repeats"] == 1 and spec["warmup"] == 0
        assert spec["backend"] is None

    def test_equivalent_specs_share_a_digest(self):
        explicit = validate_spec({"type": "run", "benchmarks": ["disparity"],
                                  "sizes": ["sqcif", "qcif", "cif"],
                                  "repeats": 1, "warmup": 0, "variants": 1})
        defaulted = validate_spec({"type": "run",
                                   "benchmarks": ["disparity"]})
        assert spec_digest(explicit) == spec_digest(defaulted)
        assert len(spec_digest(explicit)) == 16

    def test_different_specs_differ(self):
        a = validate_spec({"type": "run", "benchmarks": ["disparity"]})
        b = validate_spec({"type": "run", "benchmarks": ["disparity"],
                           "repeats": 2})
        assert spec_digest(a) != spec_digest(b)

    @pytest.mark.parametrize("bad", [
        None,
        {"type": "nope"},
        {"type": "run", "benchmarks": ["zzz"]},
        {"type": "run", "sizes": ["huge"]},
        {"type": "run", "repeats": 0},
        {"type": "run", "warmup": -1},
        {"type": "run", "backend": "gpu"},
        {"type": "run", "variants": 6},
        {"type": "trace"},
        {"type": "flame", "benchmark": "disparity", "interval": 0.0},
        {"type": "flame", "benchmark": "disparity", "format": "svg"},
        {"type": "regress", "candidate_job": "job-1"},
        {"type": "report", "from_job": 7},
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(SpecError):
            validate_spec(bad)

    def test_size_and_slug_normalization(self):
        spec = validate_spec({"type": "trace", "benchmark": "disparity",
                              "size": "cif"})
        assert spec["size"] == "CIF"


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
        assert bucket.take() == (True, 0.0)
        assert bucket.take() == (True, 0.0)
        ok, wait = bucket.take()
        assert not ok and wait == pytest.approx(0.5)
        now[0] += 0.5
        assert bucket.take()[0]


# ----------------------------------------------------------------------
# Admission control (gated executor; no real benchmark work)


class TestAdmission:
    def make(self, **kwargs):
        executor = GatedExecutor()
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("work_dir", "/tmp/sdvbs-test-admission")
        manager = JobManager(executor=executor, **kwargs)
        manager.start()
        return manager, executor

    def specs(self, count, start=0):
        return [{"type": "run", "benchmarks": ["disparity"],
                 "sizes": ["SQCIF"], "repeats": start + i + 1}
                for i in range(count)]

    def test_queue_full_rejection_is_typed(self):
        # Watermarks pinned to the cap so the hard queue-full path is
        # what rejects (backpressure has its own test below).
        manager, executor = self.make(max_queue=2, low_watermark=2,
                                      high_watermark=2)
        try:
            manager.submit(self.specs(1)[0])
            time.sleep(0.1)  # the worker holds job 1; queue drains to 0
            manager.submit(self.specs(1, start=1)[0])
            manager.submit(self.specs(1, start=2)[0])  # depth 2 == cap
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(self.specs(1, start=3)[0])
            data = excinfo.value.data
            assert data["retry_after_s"] >= 1.0
            assert data["reason"] == "queue-full"
            assert manager.metrics.counters["rejected.queue_full"] == 1
        finally:
            executor.gate.set()
            manager.stop()

    def test_watermark_backpressure_admits_only_high(self):
        manager, executor = self.make(max_queue=8, low_watermark=1,
                                      high_watermark=2)
        try:
            manager.submit(self.specs(1)[0])
            time.sleep(0.1)  # worker holds job 1; queue is empty again
            manager.submit(self.specs(1, start=1)[0])
            manager.submit(self.specs(1, start=2)[0])  # depth 2 == HIGH
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(self.specs(1, start=3)[0])
            assert excinfo.value.data["reason"] == "backpressure"
            # High-priority work is still admitted while saturated.
            job, cached = manager.submit(self.specs(1, start=4)[0],
                                         priority="high")
            assert not cached and job.state == "queued"
        finally:
            executor.gate.set()
            manager.stop()

    def test_high_priority_evicts_youngest_lower(self):
        manager, executor = self.make(max_queue=2)
        try:
            manager.submit(self.specs(1)[0])
            time.sleep(0.1)
            manager.submit(self.specs(1, start=1)[0])
            victim, _ = manager.submit(self.specs(1, start=2)[0],
                                       priority="low")
            evictor, cached = manager.submit(self.specs(1, start=3)[0],
                                             priority="high")
            assert not cached
            assert manager.status(victim.id)["state"] == "evicted"
            assert manager.status(evictor.id)["state"] == "queued"
            assert manager.metrics.counters["jobs.evicted"] == 1
        finally:
            executor.gate.set()
            manager.stop()

    def test_no_accepted_job_is_lost_under_burst(self):
        manager, executor = self.make(max_queue=4, workers=2)
        accepted, rejected = [], 0
        try:
            for spec in self.specs(32):
                try:
                    job, _ = manager.submit(spec)
                    accepted.append(job.id)
                except QueueFullError:
                    rejected += 1
            executor.gate.set()
            for job_id in accepted:
                assert wait_for(manager, job_id)["state"] == "done"
            assert rejected > 0
            counts = manager.counts()
            assert counts["done"] == len(accepted)
        finally:
            executor.gate.set()
            manager.stop()

    def test_rate_limit_rejection_is_typed(self):
        manager, executor = self.make(max_queue=16, rate_limit=1.0,
                                      rate_burst=2)
        try:
            manager.submit(self.specs(1)[0], client="alice")
            manager.submit(self.specs(1, start=1)[0], client="alice")
            with pytest.raises(RateLimitedError) as excinfo:
                manager.submit(self.specs(1, start=2)[0], client="alice")
            assert excinfo.value.data["retry_after_s"] > 0
            # Another client has its own bucket.
            manager.submit(self.specs(1, start=3)[0], client="bob")
        finally:
            executor.gate.set()
            manager.stop()

    def test_cancel_queued_only(self):
        manager, executor = self.make(max_queue=4)
        try:
            running, _ = manager.submit(self.specs(1)[0])
            time.sleep(0.1)
            queued, _ = manager.submit(self.specs(1, start=1)[0])
            assert manager.cancel(queued.id)["state"] == "cancelled"
            with pytest.raises(NotCancellableError):
                manager.cancel(running.id)
            with pytest.raises(NotCancellableError):
                manager.cancel(queued.id)  # already terminal
            with pytest.raises(UnknownJobError):
                manager.cancel("job-999999")
        finally:
            executor.gate.set()
            manager.stop()

    def test_duplicate_spec_served_from_cache(self):
        manager, executor = self.make(max_queue=4)
        executor.gate.set()
        try:
            spec = self.specs(1)[0]
            first, cached = manager.submit(spec)
            assert not cached
            wait_for(manager, first.id)
            again, cached = manager.submit(dict(spec))
            assert cached and again.id == first.id
            assert executor.calls == 1
            assert manager.metrics.counters["cache.hits"] == 1
            assert manager.info()["cache"]["hits"] == 1
        finally:
            manager.stop()

    def test_priority_order_of_execution(self):
        manager, executor = self.make(max_queue=8)
        order = []
        lock = threading.Lock()

        def tracking(job, mgr):
            with lock:
                order.append(job.priority)
            executor.gate.wait(timeout=30.0)
            return {}, {}

        manager.executor = tracking
        try:
            blocker, _ = manager.submit(self.specs(1)[0])
            time.sleep(0.1)
            manager.submit(self.specs(1, start=1)[0], priority="low")
            manager.submit(self.specs(1, start=2)[0], priority="normal")
            manager.submit(self.specs(1, start=3)[0], priority="high")
            executor.gate.set()
            deadline = time.monotonic() + 10.0
            while len(order) < 4 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert order[1:] == ["high", "normal", "low"]
        finally:
            executor.gate.set()
            manager.stop()

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            JobManager(max_queue=4, low_watermark=5, high_watermark=2)


# ----------------------------------------------------------------------
# HTTP/JSON-RPC round trips (live server, real executors)


@pytest.fixture(scope="class")
def server(request, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    bench = make_server(port=0, workers=2, max_queue=8,
                        history_db=str(tmp / "history.sqlite"),
                        work_dir=str(tmp / "work"))
    bench.start()
    request.cls.server = bench
    request.cls.url = bench.url
    yield bench
    bench.stop()


def rpc_call(url, method, params=None, rid=1, raw=None):
    body = raw if raw is not None else json.dumps(
        {"jsonrpc": "2.0", "id": rid, "method": method,
         "params": params or {}}).encode("utf-8")
    request = urllib.request.Request(
        url + "/", data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.mark.usefixtures("server")
class TestHttpRoundTrip:
    def submit(self, spec, **params):
        status, body = rpc_call(self.url, "job.submit",
                                {"spec": spec, **params})
        assert status == 200, body
        return body["result"]

    def wait_http(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, body = rpc_call(self.url, "job.status", {"id": job_id})
            if body["result"]["state"] in ("done", "failed"):
                return body["result"]
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")

    def test_run_submit_status_result_and_cache(self):
        first = self.submit(RUN_SPEC)
        assert first["state"] == "queued" and not first["cached"]
        status = self.wait_http(first["id"])
        assert status["state"] == "done", status["error"]

        _, body = rpc_call(self.url, "job.result", {"id": first["id"]})
        result = body["result"]
        assert result["result"]["type"] == "run"
        assert result["result"]["cells"] == 1
        assert result["result"]["history"]["recorded"] == 1
        artifact = result["artifacts"]["export.json"]

        # The artifact streams back over plain GET as a v8 export with
        # job provenance, and its manifest argv is the canonical
        # ["serve", "job", digest] form.
        with urllib.request.urlopen(self.url + artifact) as response:
            payload = json.loads(response.read())
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        assert payload["job"]["id"] == first["id"]
        assert payload["manifest"]["argv"] == \
            ["serve", "job", first["digest"]]

        # Identical resubmission: served from cache, same job id, no
        # re-execution (the history count did not grow).
        again = self.submit(dict(RUN_SPEC))
        assert again["cached"] and again["id"] == first["id"]
        _, info = rpc_call(self.url, "server.info")
        assert info["result"]["cache"]["hits"] >= 1
        assert info["result"]["schema"] == "sdvbs-repro/serve/v1"

        # Recording was idempotent: one cell for this manifest hash.
        digest = result["result"]["history"]["manifest_hash"]
        with open_history(self.server.manager.history_db) as store:
            assert len(store.entries(manifest_hash=digest)) == 1

    def test_regress_round_trip_via_from_jobs(self):
        base = self.submit(RUN_SPEC)
        job_id = base["id"] if base["cached"] else base["id"]
        self.wait_http(job_id)
        verdict = self.submit({"type": "regress", "candidate_job": job_id,
                               "baseline_job": job_id})
        status = self.wait_http(verdict["id"])
        assert status["state"] == "done", status["error"]
        _, body = rpc_call(self.url, "job.result", {"id": verdict["id"]})
        result = body["result"]
        assert result["result"]["exit_code"] == 0
        assert "verdict.json" in result["artifacts"]

    def test_malformed_json_is_parse_error(self):
        status, body = rpc_call(self.url, None, raw=b"{not json")
        assert status == 400
        assert body["error"]["code"] == PARSE_ERROR

    def test_batch_and_non_rpc_are_invalid_request(self):
        status, body = rpc_call(self.url, None, raw=b"[]")
        assert status == 400 and body["error"]["code"] == INVALID_REQUEST
        status, body = rpc_call(self.url, None, raw=b'{"method": "x"}')
        assert status == 400 and body["error"]["code"] == INVALID_REQUEST

    def test_unknown_method(self):
        status, body = rpc_call(self.url, "job.nope")
        assert status == 404
        assert body["error"]["code"] == METHOD_NOT_FOUND

    def test_invalid_spec_is_invalid_params(self):
        status, body = rpc_call(self.url, "job.submit",
                                {"spec": {"type": "run",
                                          "benchmarks": ["zzz"]}})
        assert status == 400
        assert body["error"]["code"] == INVALID_PARAMS
        assert "zzz" in body["error"]["message"]

    def test_unknown_job_and_not_done(self):
        status, body = rpc_call(self.url, "job.status", {"id": "job-999999"})
        assert status == 400 and body["error"]["code"] == UNKNOWN_JOB
        # A cancelled job exists but never produces a result.
        sub = self.submit(RUN_SPEC)
        job_id = sub["id"]
        self.wait_http(job_id)
        pending = self.submit({"type": "regress", "candidate_job": job_id,
                               "baseline_job": job_id, "sigmas": 3.0})
        _, body = rpc_call(self.url, "job.result", {"id": "job-999999"})
        assert body["error"]["code"] == UNKNOWN_JOB
        self.wait_http(pending["id"])

    def test_cancel_errors_over_http(self):
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        status, body = rpc_call(self.url, "job.cancel", {"id": sub["id"]})
        assert status == 400
        assert body["error"]["code"] == NOT_CANCELLABLE

    def test_job_list_filters(self):
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        _, body = rpc_call(self.url, "job.list", {"state": "done"})
        jobs = body["result"]["jobs"]
        assert jobs and all(j["state"] == "done" for j in jobs)

    def test_healthz_and_artifact_404(self):
        with urllib.request.urlopen(self.url + "/healthz") as response:
            assert json.loads(response.read())["ok"] is True
        try:
            urllib.request.urlopen(self.url + "/artifacts/job-999999/x.json")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404

    def test_artifact_path_cannot_traverse(self):
        # Names resolve against the job's artifact table; an arbitrary
        # path segment is a typed miss, not a filesystem read.
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        try:
            urllib.request.urlopen(
                self.url + f"/artifacts/{sub['id']}/..%2F..%2Fsecret")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404


class TestHttpAdmission:
    """Queue-full and rate-limit carry the documented codes over HTTP."""

    def test_queue_full_and_rate_limit_codes(self, tmp_path):
        executor = GatedExecutor()
        manager = JobManager(workers=1, max_queue=1, rate_limit=100.0,
                             rate_burst=100, work_dir=str(tmp_path),
                             executor=executor)
        bench = BenchServer(manager, port=0)
        bench.start()
        try:
            url = bench.url
            specs = [{"type": "run", "benchmarks": ["disparity"],
                      "sizes": ["SQCIF"], "repeats": i + 1}
                     for i in range(8)]
            assert rpc_call(url, "job.submit", {"spec": specs[0]})[0] == 200
            time.sleep(0.1)
            assert rpc_call(url, "job.submit", {"spec": specs[1]})[0] == 200
            status, body = rpc_call(url, "job.submit", {"spec": specs[2]})
            assert status == 429
            assert body["error"]["code"] == QUEUE_FULL
            assert body["error"]["data"]["retry_after_s"] >= 1.0
        finally:
            executor.gate.set()
            bench.stop()

    def test_rate_limit_code(self, tmp_path):
        executor = GatedExecutor()
        executor.gate.set()
        manager = JobManager(workers=1, max_queue=16, rate_limit=0.001,
                             rate_burst=1, work_dir=str(tmp_path),
                             executor=executor)
        bench = BenchServer(manager, port=0)
        bench.start()
        try:
            url = bench.url
            spec = {"type": "run", "benchmarks": ["disparity"],
                    "sizes": ["SQCIF"], "repeats": 1}
            assert rpc_call(url, "job.submit", {"spec": spec,
                                                "client": "c"})[0] == 200
            status, body = rpc_call(
                url, "job.submit",
                {"spec": {**spec, "repeats": 2}, "client": "c"})
            assert status == 429
            assert body["error"]["code"] == RATE_LIMITED
            assert body["error"]["data"]["retry_after_s"] > 0
        finally:
            bench.stop()


# ----------------------------------------------------------------------
# CLI surface


class TestServeCli:
    def test_nonpositive_args_exit_2(self, capsys):
        for argv in (["serve", "--workers", "0"],
                     ["serve", "--max-queue", "0"],
                     ["serve", "--rate-limit", "-1"],
                     ["serve", "--port", "-1"]):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
        capsys.readouterr()

    def test_bad_watermarks_exit_2(self, capsys):
        assert main(["serve", "--watermarks", "5", "2",
                     "--max-queue", "4", "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "low" in err and "high" in err
