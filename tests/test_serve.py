"""Tests for the benchmark service: jobs, admission control, JSON-RPC.

The admission-control tests inject a gated executor so queue depth is
under test control; the round-trip tests run the real executors on the
smallest input (disparity @ SQCIF) against a live in-process
ThreadingHTTPServer on an ephemeral port.
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.history import open_history
from repro.core.jobs import (
    JobManager,
    NotCancellableError,
    QueueFullError,
    RateLimitedError,
    SpecError,
    TokenBucket,
    UnknownJobError,
    spec_digest,
    validate_spec,
)
from repro.core.serve import (
    INVALID_PARAMS,
    INVALID_REQUEST,
    JOB_NOT_DONE,
    METHOD_NOT_FOUND,
    NOT_CANCELLABLE,
    PARSE_ERROR,
    QUEUE_FULL,
    RATE_LIMITED,
    UNKNOWN_JOB,
    BenchServer,
    make_server,
)

RUN_SPEC = {"type": "run", "benchmarks": ["disparity"], "sizes": ["SQCIF"],
            "repeats": 1}


def wait_for(manager, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = manager.status(job_id)
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish: "
                         f"{manager.status(job_id)}")


class GatedExecutor:
    """Executor that blocks until released, counting executions."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, job, manager):
        with self._lock:
            self.calls += 1
        self.gate.wait(timeout=30.0)
        return {"ok": True, "digest": job.digest}, {}


# ----------------------------------------------------------------------
# Spec validation and canonical digests


class TestSpecs:
    def test_run_spec_fills_defaults(self):
        spec = validate_spec({"type": "run", "benchmarks": ["disparity"]})
        assert spec["sizes"] == ["SQCIF", "QCIF", "CIF"]
        assert spec["repeats"] == 1 and spec["warmup"] == 0
        assert spec["backend"] is None

    def test_equivalent_specs_share_a_digest(self):
        explicit = validate_spec({"type": "run", "benchmarks": ["disparity"],
                                  "sizes": ["sqcif", "qcif", "cif"],
                                  "repeats": 1, "warmup": 0, "variants": 1})
        defaulted = validate_spec({"type": "run",
                                   "benchmarks": ["disparity"]})
        assert spec_digest(explicit) == spec_digest(defaulted)
        assert len(spec_digest(explicit)) == 16

    def test_different_specs_differ(self):
        a = validate_spec({"type": "run", "benchmarks": ["disparity"]})
        b = validate_spec({"type": "run", "benchmarks": ["disparity"],
                           "repeats": 2})
        assert spec_digest(a) != spec_digest(b)

    @pytest.mark.parametrize("bad", [
        None,
        {"type": "nope"},
        {"type": "run", "benchmarks": ["zzz"]},
        {"type": "run", "sizes": ["huge"]},
        {"type": "run", "repeats": 0},
        {"type": "run", "warmup": -1},
        {"type": "run", "backend": "gpu"},
        {"type": "run", "variants": 6},
        {"type": "trace"},
        {"type": "flame", "benchmark": "disparity", "interval": 0.0},
        {"type": "flame", "benchmark": "disparity", "format": "svg"},
        {"type": "regress", "candidate_job": "job-1"},
        {"type": "report", "from_job": 7},
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(SpecError):
            validate_spec(bad)

    def test_size_and_slug_normalization(self):
        spec = validate_spec({"type": "trace", "benchmark": "disparity",
                              "size": "cif"})
        assert spec["size"] == "CIF"


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
        assert bucket.take() == (True, 0.0)
        assert bucket.take() == (True, 0.0)
        ok, wait = bucket.take()
        assert not ok and wait == pytest.approx(0.5)
        now[0] += 0.5
        assert bucket.take()[0]


# ----------------------------------------------------------------------
# Admission control (gated executor; no real benchmark work)


class TestAdmission:
    def make(self, **kwargs):
        executor = GatedExecutor()
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("work_dir", "/tmp/sdvbs-test-admission")
        manager = JobManager(executor=executor, **kwargs)
        manager.start()
        return manager, executor

    def specs(self, count, start=0):
        return [{"type": "run", "benchmarks": ["disparity"],
                 "sizes": ["SQCIF"], "repeats": start + i + 1}
                for i in range(count)]

    def test_queue_full_rejection_is_typed(self):
        # Watermarks pinned to the cap so the hard queue-full path is
        # what rejects (backpressure has its own test below).
        manager, executor = self.make(max_queue=2, low_watermark=2,
                                      high_watermark=2)
        try:
            manager.submit(self.specs(1)[0])
            time.sleep(0.1)  # the worker holds job 1; queue drains to 0
            manager.submit(self.specs(1, start=1)[0])
            manager.submit(self.specs(1, start=2)[0])  # depth 2 == cap
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(self.specs(1, start=3)[0])
            data = excinfo.value.data
            assert data["retry_after_s"] >= 1.0
            assert data["reason"] == "queue-full"
            assert manager.metrics.counters["rejected.queue_full"] == 1
        finally:
            executor.gate.set()
            manager.stop()

    def test_watermark_backpressure_admits_only_high(self):
        manager, executor = self.make(max_queue=8, low_watermark=1,
                                      high_watermark=2)
        try:
            manager.submit(self.specs(1)[0])
            time.sleep(0.1)  # worker holds job 1; queue is empty again
            manager.submit(self.specs(1, start=1)[0])
            manager.submit(self.specs(1, start=2)[0])  # depth 2 == HIGH
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(self.specs(1, start=3)[0])
            assert excinfo.value.data["reason"] == "backpressure"
            # High-priority work is still admitted while saturated.
            job, cached = manager.submit(self.specs(1, start=4)[0],
                                         priority="high")
            assert not cached and job.state == "queued"
        finally:
            executor.gate.set()
            manager.stop()

    def test_high_priority_evicts_youngest_lower(self):
        manager, executor = self.make(max_queue=2)
        try:
            manager.submit(self.specs(1)[0])
            time.sleep(0.1)
            manager.submit(self.specs(1, start=1)[0])
            victim, _ = manager.submit(self.specs(1, start=2)[0],
                                       priority="low")
            evictor, cached = manager.submit(self.specs(1, start=3)[0],
                                             priority="high")
            assert not cached
            assert manager.status(victim.id)["state"] == "evicted"
            assert manager.status(evictor.id)["state"] == "queued"
            assert manager.metrics.counters["jobs.evicted"] == 1
        finally:
            executor.gate.set()
            manager.stop()

    def test_no_accepted_job_is_lost_under_burst(self):
        manager, executor = self.make(max_queue=4, workers=2)
        accepted, rejected = [], 0
        try:
            for spec in self.specs(32):
                try:
                    job, _ = manager.submit(spec)
                    accepted.append(job.id)
                except QueueFullError:
                    rejected += 1
            executor.gate.set()
            for job_id in accepted:
                assert wait_for(manager, job_id)["state"] == "done"
            assert rejected > 0
            counts = manager.counts()
            assert counts["done"] == len(accepted)
        finally:
            executor.gate.set()
            manager.stop()

    def test_rate_limit_rejection_is_typed(self):
        manager, executor = self.make(max_queue=16, rate_limit=1.0,
                                      rate_burst=2)
        try:
            manager.submit(self.specs(1)[0], client="alice")
            manager.submit(self.specs(1, start=1)[0], client="alice")
            with pytest.raises(RateLimitedError) as excinfo:
                manager.submit(self.specs(1, start=2)[0], client="alice")
            assert excinfo.value.data["retry_after_s"] > 0
            # Another client has its own bucket.
            manager.submit(self.specs(1, start=3)[0], client="bob")
        finally:
            executor.gate.set()
            manager.stop()

    def test_cancel_queued_only(self):
        manager, executor = self.make(max_queue=4)
        try:
            running, _ = manager.submit(self.specs(1)[0])
            time.sleep(0.1)
            queued, _ = manager.submit(self.specs(1, start=1)[0])
            assert manager.cancel(queued.id)["state"] == "cancelled"
            with pytest.raises(NotCancellableError):
                manager.cancel(running.id)
            with pytest.raises(NotCancellableError):
                manager.cancel(queued.id)  # already terminal
            with pytest.raises(UnknownJobError):
                manager.cancel("job-999999")
        finally:
            executor.gate.set()
            manager.stop()

    def test_duplicate_spec_served_from_cache(self):
        manager, executor = self.make(max_queue=4)
        executor.gate.set()
        try:
            spec = self.specs(1)[0]
            first, cached = manager.submit(spec)
            assert not cached
            wait_for(manager, first.id)
            again, cached = manager.submit(dict(spec))
            assert cached and again.id == first.id
            assert executor.calls == 1
            assert manager.metrics.counters["cache.hits"] == 1
            assert manager.info()["cache"]["hits"] == 1
        finally:
            manager.stop()

    def test_priority_order_of_execution(self):
        manager, executor = self.make(max_queue=8)
        order = []
        lock = threading.Lock()

        def tracking(job, mgr):
            with lock:
                order.append(job.priority)
            executor.gate.wait(timeout=30.0)
            return {}, {}

        manager.executor = tracking
        try:
            blocker, _ = manager.submit(self.specs(1)[0])
            time.sleep(0.1)
            manager.submit(self.specs(1, start=1)[0], priority="low")
            manager.submit(self.specs(1, start=2)[0], priority="normal")
            manager.submit(self.specs(1, start=3)[0], priority="high")
            executor.gate.set()
            deadline = time.monotonic() + 10.0
            while len(order) < 4 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert order[1:] == ["high", "normal", "low"]
        finally:
            executor.gate.set()
            manager.stop()

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            JobManager(max_queue=4, low_watermark=5, high_watermark=2)


# ----------------------------------------------------------------------
# HTTP/JSON-RPC round trips (live server, real executors)


@pytest.fixture(scope="class")
def server(request, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    bench = make_server(port=0, workers=2, max_queue=8,
                        history_db=str(tmp / "history.sqlite"),
                        work_dir=str(tmp / "work"))
    bench.start()
    request.cls.server = bench
    request.cls.url = bench.url
    yield bench
    bench.stop()


def rpc_call(url, method, params=None, rid=1, raw=None):
    body = raw if raw is not None else json.dumps(
        {"jsonrpc": "2.0", "id": rid, "method": method,
         "params": params or {}}).encode("utf-8")
    request = urllib.request.Request(
        url + "/", data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.mark.usefixtures("server")
class TestHttpRoundTrip:
    def submit(self, spec, **params):
        status, body = rpc_call(self.url, "job.submit",
                                {"spec": spec, **params})
        assert status == 200, body
        return body["result"]

    def wait_http(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, body = rpc_call(self.url, "job.status", {"id": job_id})
            if body["result"]["state"] in ("done", "failed"):
                return body["result"]
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")

    def test_run_submit_status_result_and_cache(self):
        first = self.submit(RUN_SPEC)
        assert first["state"] == "queued" and not first["cached"]
        status = self.wait_http(first["id"])
        assert status["state"] == "done", status["error"]

        _, body = rpc_call(self.url, "job.result", {"id": first["id"]})
        result = body["result"]
        assert result["result"]["type"] == "run"
        assert result["result"]["cells"] == 1
        assert result["result"]["history"]["recorded"] == 1
        artifact = result["artifacts"]["export.json"]

        # The artifact streams back over plain GET as a v8 export with
        # job provenance, and its manifest argv is the canonical
        # ["serve", "job", digest] form.
        with urllib.request.urlopen(self.url + artifact) as response:
            payload = json.loads(response.read())
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        assert payload["job"]["id"] == first["id"]
        assert payload["manifest"]["argv"] == \
            ["serve", "job", first["digest"]]

        # Identical resubmission: served from cache, same job id, no
        # re-execution (the history count did not grow).
        again = self.submit(dict(RUN_SPEC))
        assert again["cached"] and again["id"] == first["id"]
        _, info = rpc_call(self.url, "server.info")
        assert info["result"]["cache"]["hits"] >= 1
        assert info["result"]["schema"] == "sdvbs-repro/serve/v1"

        # Recording was idempotent: one cell for this manifest hash.
        digest = result["result"]["history"]["manifest_hash"]
        with open_history(self.server.manager.history_db) as store:
            assert len(store.entries(manifest_hash=digest)) == 1

    def test_regress_round_trip_via_from_jobs(self):
        base = self.submit(RUN_SPEC)
        job_id = base["id"] if base["cached"] else base["id"]
        self.wait_http(job_id)
        verdict = self.submit({"type": "regress", "candidate_job": job_id,
                               "baseline_job": job_id})
        status = self.wait_http(verdict["id"])
        assert status["state"] == "done", status["error"]
        _, body = rpc_call(self.url, "job.result", {"id": verdict["id"]})
        result = body["result"]
        assert result["result"]["exit_code"] == 0
        assert "verdict.json" in result["artifacts"]

    def test_malformed_json_is_parse_error(self):
        status, body = rpc_call(self.url, None, raw=b"{not json")
        assert status == 400
        assert body["error"]["code"] == PARSE_ERROR

    def test_batch_and_non_rpc_are_invalid_request(self):
        status, body = rpc_call(self.url, None, raw=b"[]")
        assert status == 400 and body["error"]["code"] == INVALID_REQUEST
        status, body = rpc_call(self.url, None, raw=b'{"method": "x"}')
        assert status == 400 and body["error"]["code"] == INVALID_REQUEST

    def test_unknown_method(self):
        status, body = rpc_call(self.url, "job.nope")
        assert status == 404
        assert body["error"]["code"] == METHOD_NOT_FOUND

    def test_invalid_spec_is_invalid_params(self):
        status, body = rpc_call(self.url, "job.submit",
                                {"spec": {"type": "run",
                                          "benchmarks": ["zzz"]}})
        assert status == 400
        assert body["error"]["code"] == INVALID_PARAMS
        assert "zzz" in body["error"]["message"]

    def test_unknown_job_and_not_done(self):
        status, body = rpc_call(self.url, "job.status", {"id": "job-999999"})
        assert status == 400 and body["error"]["code"] == UNKNOWN_JOB
        # A cancelled job exists but never produces a result.
        sub = self.submit(RUN_SPEC)
        job_id = sub["id"]
        self.wait_http(job_id)
        pending = self.submit({"type": "regress", "candidate_job": job_id,
                               "baseline_job": job_id, "sigmas": 3.0})
        _, body = rpc_call(self.url, "job.result", {"id": "job-999999"})
        assert body["error"]["code"] == UNKNOWN_JOB
        self.wait_http(pending["id"])

    def test_cancel_errors_over_http(self):
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        status, body = rpc_call(self.url, "job.cancel", {"id": sub["id"]})
        assert status == 400
        assert body["error"]["code"] == NOT_CANCELLABLE

    def test_job_list_filters(self):
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        _, body = rpc_call(self.url, "job.list", {"state": "done"})
        jobs = body["result"]["jobs"]
        assert jobs and all(j["state"] == "done" for j in jobs)

    def test_healthz_and_artifact_404(self):
        with urllib.request.urlopen(self.url + "/healthz") as response:
            assert json.loads(response.read())["ok"] is True
        try:
            urllib.request.urlopen(self.url + "/artifacts/job-999999/x.json")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404

    def test_artifact_path_cannot_traverse(self):
        # Names resolve against the job's artifact table; an arbitrary
        # path segment is a typed miss, not a filesystem read.
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        try:
            urllib.request.urlopen(
                self.url + f"/artifacts/{sub['id']}/..%2F..%2Fsecret")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404


class TestHttpAdmission:
    """Queue-full and rate-limit carry the documented codes over HTTP."""

    def test_queue_full_and_rate_limit_codes(self, tmp_path):
        executor = GatedExecutor()
        manager = JobManager(workers=1, max_queue=1, rate_limit=100.0,
                             rate_burst=100, work_dir=str(tmp_path),
                             executor=executor)
        bench = BenchServer(manager, port=0)
        bench.start()
        try:
            url = bench.url
            specs = [{"type": "run", "benchmarks": ["disparity"],
                      "sizes": ["SQCIF"], "repeats": i + 1}
                     for i in range(8)]
            assert rpc_call(url, "job.submit", {"spec": specs[0]})[0] == 200
            time.sleep(0.1)
            assert rpc_call(url, "job.submit", {"spec": specs[1]})[0] == 200
            status, body = rpc_call(url, "job.submit", {"spec": specs[2]})
            assert status == 429
            assert body["error"]["code"] == QUEUE_FULL
            assert body["error"]["data"]["retry_after_s"] >= 1.0
        finally:
            executor.gate.set()
            bench.stop()

    def test_rate_limit_code(self, tmp_path):
        executor = GatedExecutor()
        executor.gate.set()
        manager = JobManager(workers=1, max_queue=16, rate_limit=0.001,
                             rate_burst=1, work_dir=str(tmp_path),
                             executor=executor)
        bench = BenchServer(manager, port=0)
        bench.start()
        try:
            url = bench.url
            spec = {"type": "run", "benchmarks": ["disparity"],
                    "sizes": ["SQCIF"], "repeats": 1}
            assert rpc_call(url, "job.submit", {"spec": spec,
                                                "client": "c"})[0] == 200
            status, body = rpc_call(
                url, "job.submit",
                {"spec": {**spec, "repeats": 2}, "client": "c"})
            assert status == 429
            assert body["error"]["code"] == RATE_LIMITED
            assert body["error"]["data"]["retry_after_s"] > 0
        finally:
            bench.stop()


# ----------------------------------------------------------------------
# CLI surface


# ----------------------------------------------------------------------
# Telemetry: /metrics, /healthz readiness, request ids, access log, top


@pytest.mark.usefixtures("server")
class TestTelemetryHttp:
    def submit(self, spec, **params):
        status, body = rpc_call(self.url, "job.submit",
                                {"spec": spec, **params})
        assert status == 200, body
        return body["result"]

    def wait_http(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, body = rpc_call(self.url, "job.status", {"id": job_id})
            if body["result"]["state"] in ("done", "failed"):
                return body["result"]
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")

    def test_metrics_exposition_agrees_with_server_info(self):
        from repro.core.telemetry import lint_exposition, parse_metric_key

        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        with urllib.request.urlopen(self.url + "/metrics") as response:
            assert response.headers["Content-Type"] \
                == "text/plain; version=0.0.4; charset=utf-8"
            text = response.read().decode("utf-8")
        samples = lint_exposition(text)
        # The catalog's load-bearing series all exist.
        for required in ("sdvbs_queue_depth", "sdvbs_jobs_state",
                         "sdvbs_cache_hits_total",
                         "sdvbs_cache_misses_total",
                         "sdvbs_workers_busy", "sdvbs_workers_total",
                         "sdvbs_job_queue_wait_seconds_count",
                         "sdvbs_job_exec_seconds_count",
                         "sdvbs_job_queue_wait_seconds_bucket",
                         "sdvbs_job_exec_seconds_bucket"):
            assert required in samples, f"missing {required}"
        # Cross-check: histogram _count/_sum match the latency block
        # server.info reports (no jobs are running, so no drift).
        _, body = rpc_call(self.url, "server.info")
        latency = body["result"]["latency"]
        for family in ("queue_wait", "exec"):
            name = f"sdvbs_job_{family}_seconds"
            for labels, value in samples[f"{name}_count"]:
                summary = latency[labels["type"]][family]
                assert value == summary["count"]
            for labels, value in samples[f"{name}_sum"]:
                summary = latency[labels["type"]][family]
                assert value == pytest.approx(summary["sum"])
        # Jobs-by-state gauges match the info tally.
        states = {labels["state"]: value
                  for labels, value in samples["sdvbs_jobs_state"]}
        assert states == {k: float(v)
                          for k, v in body["result"]["jobs"].items()}
        # server.metrics returns the same data as JSON.
        _, body = rpc_call(self.url, "server.metrics")
        histograms = body["result"]["histograms"]
        for key, summary in histograms.items():
            base, labels = parse_metric_key(key)
            if base == "job.exec_seconds":
                assert summary["count"] \
                    == latency[labels["type"]]["exec"]["count"]

    def test_trace_artifact_has_lifecycle_envelope(self):
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        _, body = rpc_call(self.url, "job.result", {"id": sub["id"]})
        artifact = body["result"]["artifacts"]["trace.json"]
        with urllib.request.urlopen(self.url + artifact) as response:
            doc = json.loads(response.read())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        spans = {e["name"]: e for e in events}
        job_span = spans[f"job:{sub['id']}"]
        running = spans["running"]
        queued = spans["queued"]
        kernels = [e for e in events if e.get("cat") == "kernel"]
        assert job_span["cat"] == "lifecycle"
        assert kernels, "run trace must contain kernel spans"

        def contains(outer, inner, slack=1.0):
            return (outer["ts"] - slack <= inner["ts"]
                    and inner["ts"] + inner["dur"]
                    <= outer["ts"] + outer["dur"] + slack)

        # queued and running partition the envelope; every kernel span
        # sits inside running, which sits inside the job span.
        assert contains(job_span, queued)
        assert contains(job_span, running)
        for kernel in kernels:
            assert contains(running, kernel), kernel["name"]

    def test_request_id_echo_and_propagation(self):
        body = json.dumps({
            "jsonrpc": "2.0", "id": 1, "method": "job.submit",
            "params": {"spec": dict(RUN_SPEC)},
        }).encode("utf-8")
        request = urllib.request.Request(
            self.url + "/", data=body,
            headers={"Content-Type": "application/json",
                     "X-Request-Id": "trace-me-42"})
        with urllib.request.urlopen(request) as response:
            assert response.headers["X-Request-Id"] == "trace-me-42"
            job = json.loads(response.read())["result"]
        # Cached or fresh, the submission stamps the job record only
        # when it created it; a fresh submit carries the id through.
        if not job["cached"]:
            assert job["request_id"] == "trace-me-42"
        # Without a client-supplied header the server generates one.
        with urllib.request.urlopen(self.url + "/healthz") as response:
            assert response.headers["X-Request-Id"]

    def test_top_cli_once_json(self, capsys):
        sub = self.submit(RUN_SPEC)
        self.wait_http(sub["id"])
        assert main(["top", "--url", self.url, "--once", "--json"]) == 0
        frame = json.loads(capsys.readouterr().out)
        assert frame["workers"]["total"] == 2
        assert frame["jobs"]["done"] >= 1
        assert "run" in frame["latency"]
        assert main(["top", "--url", self.url, "--once"]) == 0
        text = capsys.readouterr().out
        assert "sdvbs top" in text and "queue-wait" in text

    def test_top_cli_unreachable_exit_2(self, capsys):
        assert main(["top", "--url", "http://127.0.0.1:9",
                     "--once"]) == 2
        assert "sdvbs top" in capsys.readouterr().err


class TestHealthzReadiness:
    def test_healthz_reports_real_state_and_drains_to_503(self, tmp_path):
        executor = GatedExecutor()
        manager = JobManager(workers=1, max_queue=4,
                             work_dir=str(tmp_path), executor=executor)
        bench = BenchServer(manager, port=0)
        bench.start()
        try:
            with urllib.request.urlopen(bench.url + "/healthz") as response:
                body = json.loads(response.read())
            assert body["ok"] is True
            assert body["shutting_down"] is False
            assert body["workers"] == {"total": 1, "busy": 0}
            assert body["queue_depth"] == 0
            assert body["saturated"] is False
            assert body["uptime_s"] >= 0.0
            # Flip to draining: probes must see 503 with ok false while
            # read-only RPC (server.metrics) stays answerable.
            bench._shutting_down = True
            try:
                urllib.request.urlopen(bench.url + "/healthz")
                raise AssertionError("expected 503")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
                body = json.loads(exc.read())
            assert body["ok"] is False and body["shutting_down"] is True
            status, body = rpc_call(bench.url, "server.metrics")
            assert status == 200 and "counters" in body["result"]
            status, body = rpc_call(bench.url, "job.list")
            assert status == 503
        finally:
            executor.gate.set()
            bench.stop()


class TestAccessLog:
    def test_access_log_off_by_default_but_metrics_count(self, tmp_path):
        bench = make_server(port=0, work_dir=str(tmp_path))
        bench.start()
        try:
            urllib.request.urlopen(bench.url + "/healthz").read()
            events = bench.manager.events.recent(event="http.access")
            assert events == []
            counters = bench.manager.metrics.counters
            assert sum(v for k, v in counters.items()
                       if k.startswith("http.requests")) >= 1
        finally:
            bench.stop()

    def test_access_log_records_structured_events(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        bench = make_server(port=0, work_dir=str(tmp_path / "work"),
                            access_log=True, log_file=str(log_path))
        bench.start()
        try:
            request = urllib.request.Request(
                bench.url + "/healthz",
                headers={"X-Request-Id": "probe-7"})
            urllib.request.urlopen(request).read()
            deadline = time.monotonic() + 5.0
            access = []
            while time.monotonic() < deadline and not access:
                access = bench.manager.events.recent(event="http.access")
                time.sleep(0.01)
            assert access, "expected an http.access event"
            record = access[-1]
            assert record["method"] == "GET"
            assert record["path"] == "/healthz"
            assert record["status"] == 200
            assert record["request_id"] == "probe-7"
            assert record["duration_ms"] >= 0.0
            # The same record landed in the JSON-lines sink.
            lines = [json.loads(line)
                     for line in log_path.read_text().splitlines()]
            assert any(r.get("event") == "http.access"
                       and r.get("request_id") == "probe-7"
                       for r in lines)
        finally:
            bench.stop()


class TestManagerTelemetry:
    """Job-lifecycle metrics and events on the manager itself."""

    def test_registry_threadsafe_by_default(self, tmp_path):
        # The serve regression: concurrent workers hammering one
        # counter must never drop an increment.
        manager = JobManager(workers=1, work_dir=str(tmp_path),
                             executor=GatedExecutor())
        barrier = threading.Barrier(8)

        def pound():
            barrier.wait()
            for _ in range(500):
                manager.metrics.inc("test.concurrent")

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert manager.metrics.counters["test.concurrent"] == 4000

    def test_lifecycle_events_and_state_gauges(self, tmp_path):
        executor = GatedExecutor()
        executor.gate.set()
        manager = JobManager(workers=1, work_dir=str(tmp_path),
                             executor=executor)
        manager.start()
        try:
            spec = {"type": "run", "benchmarks": ["disparity"],
                    "sizes": ["SQCIF"], "repeats": 1}
            job, _ = manager.submit(spec, request_id="rid-1")
            wait_for(manager, job.id)
            events = [r["event"] for r in manager.events.recent()]
            for expected in ("job.submit", "job.pickup", "job.state",
                             "job.done"):
                assert expected in events, events
            done = manager.events.recent(event="job.done")[-1]
            assert done["id"] == job.id
            assert done["request_id"] == "rid-1"
            status = manager.status(job.id)
            assert status["queue_wait_s"] >= 0.0
            assert status["exec_s"] > 0.0
            gauges = manager.metrics.gauges
            assert gauges["jobs.state{state=done}"] == 1
            assert gauges["jobs.state{state=queued}"] == 0
            assert gauges["workers.busy"] == 0
        finally:
            manager.stop()

    def test_failed_job_emits_and_counts(self, tmp_path):
        def broken(job, mgr):
            raise RuntimeError("kaboom")

        manager = JobManager(workers=1, work_dir=str(tmp_path),
                             executor=broken)
        manager.start()
        try:
            spec = {"type": "run", "benchmarks": ["disparity"],
                    "sizes": ["SQCIF"], "repeats": 1}
            job, _ = manager.submit(spec)
            status = wait_for(manager, job.id)
            assert status["state"] == "failed"
            failed = manager.events.recent(event="job.failed")
            assert failed and "kaboom" in failed[-1]["error"]
            assert failed[-1]["level"] == "error"
            assert manager.metrics.gauges["jobs.state{state=failed}"] == 1
            # exec latency is observed even for failures.
            key = "job.exec_seconds{type=run}"
            assert manager.metrics.log_histogram(key).count == 1
        finally:
            manager.stop()


class TestContinuousProfiler:
    """Unit-level continuous-profiler behavior (no live server)."""

    def test_overhead_audit_shape(self):
        from repro.core.jobs import measure_sampler_overhead

        audit = measure_sampler_overhead(0.005, work_seconds=0.01,
                                         passes=2)
        assert set(audit) == {"interval_seconds", "work_seconds",
                              "passes", "overhead_pct"}
        assert audit["interval_seconds"] == 0.005
        assert audit["passes"] == 2.0
        assert audit["overhead_pct"] >= 0.0

    def test_overhead_audit_validates_args(self):
        from repro.core.jobs import measure_sampler_overhead

        with pytest.raises(ValueError):
            measure_sampler_overhead(0.0)
        with pytest.raises(ValueError):
            measure_sampler_overhead(0.005, passes=0)

    def test_disabled_audit_is_deterministic(self):
        from repro.core.jobs import ContinuousProfiler

        profiler = ContinuousProfiler(interval=0.005,
                                      measure_overhead=False)
        assert profiler.overhead["overhead_pct"] == 0.0
        assert profiler.audit_block() == profiler.overhead
        assert profiler.audit_block() is not profiler.overhead

    def test_interval_must_be_positive(self):
        from repro.core.jobs import ContinuousProfiler

        with pytest.raises(ValueError):
            ContinuousProfiler(interval=0.0, measure_overhead=False)

    def test_record_merges_per_type_aggregates(self):
        from repro.core.jobs import ContinuousProfiler
        from repro.core.sampling import SampledProfile

        profiler = ContinuousProfiler(interval=0.005,
                                      measure_overhead=False)
        one = SampledProfile(interval=0.005, samples=4,
                             folded={("m", "a"): 0.02},
                             kernel_seconds={"A": 0.02},
                             observable=("A",))
        two = SampledProfile(interval=0.005, samples=6,
                             folded={("m", "a"): 0.03},
                             kernel_seconds={"A": 0.03},
                             observable=("A",))
        profiler.record("run", one)
        profiler.record("run", two)
        profiler.record("report", one)
        assert profiler.jobs_sampled == 3
        assert profiler.samples == 14
        assert profiler.job_types() == ["report", "run"]
        collapsed = profiler.collapsed("run")
        assert collapsed is not None and "m;a" in collapsed
        assert profiler.collapsed("flame") is None

        snapshot = profiler.snapshot()
        assert snapshot["enabled"] is True
        run = snapshot["types"]["run"]
        assert run["samples"] == 10
        assert run["artifact"] == "/artifacts/profile/run.collapsed"
        only = profiler.snapshot(job_type="report")
        assert set(only["types"]) == {"report"}

    def test_manager_without_profiler_reports_disabled(self, tmp_path):
        manager = JobManager(workers=1, work_dir=str(tmp_path),
                             executor=GatedExecutor())
        assert manager.profiler is None
        assert manager.profile_snapshot() == {"enabled": False}
        assert manager.info()["profile"] == {"enabled": False}
        assert manager.info()["config"]["profile_interval"] == 0.0

    def test_sink_disable_hook_reaches_metrics(self, tmp_path):
        from repro.core.telemetry import EventLog

        events = EventLog(sink=str(tmp_path / "events.jsonl"))
        manager = JobManager(workers=1, work_dir=str(tmp_path / "work"),
                             executor=GatedExecutor(), events=events)
        assert manager.metrics.counters["events.sink_disabled"] == 0
        events._file.close()
        events.emit("boom")
        assert manager.metrics.counters["events.sink_disabled"] == 1
        info = manager.info()
        assert info["events"]["sink_disabled"] == 1
        assert "ValueError" in info["events"]["sink_error"]


@pytest.fixture(scope="class")
def profiled_server(request, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("profserve")
    bench = make_server(port=0, workers=2, max_queue=8,
                        history_db=str(tmp / "history.sqlite"),
                        work_dir=str(tmp / "work"),
                        profile_interval=0.002)
    bench.start()
    request.cls.server = bench
    request.cls.url = bench.url
    yield bench
    bench.stop()


@pytest.mark.usefixtures("profiled_server")
class TestProfiledServer:
    def _run_one_job(self):
        status, body = rpc_call(self.url, "job.submit",
                                {"spec": dict(RUN_SPEC)})
        assert status == 200, body
        job_id = body["result"]["id"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            _, body = rpc_call(self.url, "job.status", {"id": job_id})
            if body["result"]["state"] in ("done", "failed"):
                assert body["result"]["state"] == "done", body
                return job_id
            time.sleep(0.05)
        raise AssertionError("job never finished")

    def test_profile_rpc_artifact_and_manifest(self):
        job_id = self._run_one_job()

        _, body = rpc_call(self.url, "server.profile")
        snapshot = body["result"]
        assert snapshot["enabled"] is True
        assert snapshot["interval_seconds"] == 0.002
        assert snapshot["jobs_sampled"] >= 1
        assert snapshot["schema"] == "sdvbs-repro/serve/v1"
        run = snapshot["types"]["run"]
        assert run["artifact"] == "/artifacts/profile/run.collapsed"

        # The aggregate flamegraph streams over plain GET.
        with urllib.request.urlopen(self.url + run["artifact"]) as resp:
            text = resp.read().decode("utf-8")
        assert resp.status == 200
        if run["samples"]:
            assert text.strip()

        # The served export's manifest records the profiler audit.
        _, body = rpc_call(self.url, "job.result", {"id": job_id})
        artifact = body["result"]["artifacts"]["export.json"]
        with urllib.request.urlopen(self.url + artifact) as resp:
            export = json.loads(resp.read())
        audit = export["manifest"]["continuous_profiler"]
        assert audit["interval_seconds"] == 0.002
        assert audit["overhead_pct"] >= 0.0

        # server.info and /metrics surface the same numbers.
        _, body = rpc_call(self.url, "server.info")
        info = body["result"]
        assert info["profile"]["enabled"] is True
        assert info["profile"]["jobs_sampled"] >= 1
        assert info["config"]["profile_interval"] == 0.002
        with urllib.request.urlopen(self.url + "/metrics") as resp:
            exposition = resp.read().decode("utf-8")
        assert "sdvbs_profile_jobs_sampled" in exposition
        assert "sdvbs_profile_samples" in exposition
        assert "sdvbs_profile_overhead_pct" in exposition
        assert "sdvbs_events_sink_disabled" in exposition
        from repro.core.telemetry import lint_exposition

        lint_exposition(exposition)

    def test_profile_rpc_validates_top(self):
        status, body = rpc_call(self.url, "server.profile", {"top": 0})
        assert body["error"]["code"] == INVALID_PARAMS
        status, body = rpc_call(self.url, "server.profile",
                                {"top": True})
        assert body["error"]["code"] == INVALID_PARAMS

    def test_unknown_profile_artifact_is_404(self):
        for path in ("/artifacts/profile/ghost.collapsed",
                     "/artifacts/profile/run.svg"):
            try:
                urllib.request.urlopen(self.url + path)
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
            else:
                raise AssertionError(f"{path} should 404")


class TestServeCli:
    def test_nonpositive_args_exit_2(self, capsys):
        for argv in (["serve", "--workers", "0"],
                     ["serve", "--max-queue", "0"],
                     ["serve", "--rate-limit", "-1"],
                     ["serve", "--port", "-1"]):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
        capsys.readouterr()

    def test_bad_watermarks_exit_2(self, capsys):
        assert main(["serve", "--watermarks", "5", "2",
                     "--max-queue", "4", "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "low" in err and "high" in err
