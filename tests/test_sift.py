"""Tests for the SIFT application."""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import image
from repro.imgproc.pyramid import scale_space
from repro.sift import (
    BENCHMARK,
    contrast_normalize,
    describe_keypoints,
    detect_keypoints,
    dominant_orientations,
    extract_features,
    local_extrema_mask,
    match_descriptors,
    orientation_histogram,
    refine_candidate,
)


def blob_image(shape=(48, 48), center=(24, 24), sigma=3.0):
    yy, xx = np.mgrid[: shape[0], : shape[1]].astype(np.float64)
    return np.exp(
        -((yy - center[0]) ** 2 + (xx - center[1]) ** 2) / (2 * sigma**2)
    )


class TestExtremaMask:
    def test_detects_injected_peak(self):
        below = np.zeros((8, 8))
        here = np.zeros((8, 8))
        above = np.zeros((8, 8))
        here[4, 5] = 1.0
        mask = local_extrema_mask(below, here, above, threshold=0.1)
        assert mask[4, 5]
        assert mask.sum() == 1

    def test_detects_minimum(self):
        below = np.zeros((8, 8))
        here = np.zeros((8, 8))
        above = np.zeros((8, 8))
        here[3, 3] = -1.0
        mask = local_extrema_mask(below, here, above, threshold=0.1)
        assert mask[3, 3]

    def test_threshold_suppresses_weak(self):
        here = np.zeros((8, 8))
        here[4, 4] = 0.05
        mask = local_extrema_mask(np.zeros((8, 8)), here, np.zeros((8, 8)),
                                  threshold=0.1)
        assert not mask.any()

    def test_border_excluded(self):
        here = np.zeros((8, 8))
        here[0, 0] = 5.0
        mask = local_extrema_mask(np.zeros((8, 8)), here, np.zeros((8, 8)),
                                  threshold=0.1)
        assert not mask.any()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            local_extrema_mask(np.zeros((4, 4)), np.zeros((4, 5)),
                               np.zeros((4, 4)), 0.1)


class TestRefinement:
    def test_offset_small_for_centered_peak(self):
        img = blob_image()
        octaves = scale_space(img, 1)
        dogs = octaves[0].dogs
        # Find the strongest response location at scale 1.
        s = 1
        r, c = np.unravel_index(np.argmax(np.abs(dogs[s])), dogs[s].shape)
        offset = refine_candidate(dogs, s, int(r), int(c))
        assert offset is not None
        assert np.abs(offset[:2]).max() < 1.5


class TestDetection:
    def test_blob_detected_near_center(self):
        img = blob_image() * 0.8
        octaves = scale_space(img, 2)
        kps = detect_keypoints(octaves, contrast_threshold=0.005,
                               upsampled=False)
        assert kps, "no keypoints found on a clean blob"
        distances = [np.hypot(k.row - 24, k.col - 24) for k in kps]
        assert min(distances) < 4.0

    def test_flat_image_no_keypoints(self):
        img = np.full((64, 64), 0.5)
        octaves = scale_space(img, 2)
        assert detect_keypoints(octaves, upsampled=False) == []

    def test_keypoints_have_positive_sigma(self):
        scene = image(InputSize.SQCIF, 0, salt="sift")
        result = extract_features(scene, n_octaves=2)
        assert all(k.sigma > 0 for k in result.keypoints)


class TestOrientation:
    def test_dominant_orientation_of_ramp(self):
        # Gradient pointing +x everywhere -> angle 0 dominates.
        cols = np.tile(np.arange(32, dtype=np.float64), (32, 1)) / 32.0
        from repro.imgproc.gradient import gradient

        gx, gy = gradient(cols)
        mag = np.hypot(gx, gy)
        ang = np.arctan2(gy, gx)
        hist = orientation_histogram(mag, ang, 16, 16, radius=6, sigma=3.0)
        angles = dominant_orientations(hist)
        assert angles
        assert min(abs(a) for a in angles) < 0.3

    def test_empty_histogram_no_peaks(self):
        assert dominant_orientations(np.zeros(36)) == []

    def test_two_peaks_detected(self):
        hist = np.zeros(36)
        hist[0] = 10.0
        hist[18] = 9.5
        angles = dominant_orientations(hist, peak_ratio=0.8)
        assert len(angles) == 2


class TestDescriptors:
    def test_descriptor_normalized(self):
        scene = image(InputSize.SQCIF, 1, salt="sift")
        result = extract_features(scene, n_octaves=2)
        assert result.features
        for feature in result.features[:10]:
            norm = np.linalg.norm(feature.descriptor)
            assert norm == pytest.approx(1.0, abs=1e-6) or norm == 0.0
            assert feature.descriptor.shape == (128,)
            assert (feature.descriptor >= 0.0).all()
            # Clipped at 0.2 before the final renormalization, so values
            # stay well below the unclipped maximum of 1.0.
            assert feature.descriptor.max() <= 0.5

    def test_matching_identity(self):
        scene = image(InputSize.SQCIF, 2, salt="sift")
        result = extract_features(scene, n_octaves=2)
        matches = match_descriptors(result.features, result.features,
                                    ratio=1.01)
        identical = sum(1 for i, j in matches if i == j)
        assert identical > 0.9 * len(matches)

    def test_shift_consistency(self):
        scene = image(InputSize.SQCIF, 1, salt="sift")
        shift = 4
        shifted = np.roll(scene, shift, axis=1)
        first = extract_features(scene, n_octaves=2)
        second = extract_features(shifted, n_octaves=2)
        matches = match_descriptors(first.features, second.features)
        assert len(matches) > 20
        consistent = sum(
            1
            for i, j in matches
            if abs(
                second.features[j].keypoint.col
                - first.features[i].keypoint.col
                - shift
            )
            < 2.0
        )
        assert consistent > 0.8 * len(matches)

    def test_match_empty_inputs(self):
        assert match_descriptors([], []) == []


class TestContrastNormalize:
    def test_flattens_illumination_gradient(self):
        rng = np.random.default_rng(3)
        texture = rng.random((64, 64)) * 0.2
        ramp = np.linspace(0, 0.8, 64)[None, :]
        img = texture + ramp
        out = contrast_normalize(img, strength=1.0)
        # Interior row means should vary much less after normalization
        # (borders replicate the nearest full window, so exclude them).
        interior = slice(8, -8)
        before = (
            img[:, interior].mean(axis=0).max()
            - img[:, interior].mean(axis=0).min()
        )
        after = (
            out[:, interior].mean(axis=0).max()
            - out[:, interior].mean(axis=0).min()
        )
        assert after < 0.5 * before

    def test_strength_zero_identity(self):
        img = np.random.default_rng(4).random((32, 32))
        assert np.allclose(contrast_normalize(img, strength=0.0), img)

    def test_invalid_strength(self):
        with pytest.raises(ValueError):
            contrast_normalize(np.ones((16, 16)), strength=1.5)


class TestBenchmarkWiring:
    def test_run_and_kernels(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["keypoints"] > 10
        assert out["features"] >= out["keypoints"]
        for kernel in ("SIFT", "Interpolation", "IntegralImage"):
            assert kernel in profiler.kernel_seconds
        # The SIFT kernel dominates, as in the paper's Figure 3.
        shares = profiler.kernel_seconds
        assert shares["SIFT"] > shares["Interpolation"]

    def test_parallelism_ordering(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        # Table IV: IntegralImage (16,000x) > Interpolation (502x) >
        # SIFT (180x).
        assert rows["IntegralImage"].parallelism > \
            rows["Interpolation"].parallelism
        assert rows["SIFT"].parallelism < rows["Interpolation"].parallelism
        assert rows["IntegralImage"].parallelism > 1000
