"""Programmatic paper-vs-reproduction shape checks.

EXPERIMENTS.md narrates the comparison; these tests enforce it: for every
benchmark the paper's Table IV covers, the reproduction's parallelism
classes match the paper's labels, and for the benchmarks listed in
``ORDERING_MATCHED`` the within-benchmark kernel ordering matches the
paper exactly.
"""

import pytest

from repro.core import InputSize, get_benchmark
from repro.core.paper import (
    FIGURE2_BANDS,
    ORDERING_MATCHED,
    PAPER_TABLE4,
    paper_class,
    paper_kernel_order,
)


def reproduction_estimates(slug):
    return {
        est.kernel: est
        for est in get_benchmark(slug).parallelism(InputSize.SQCIF)
    }


class TestTable4Classes:
    @pytest.mark.parametrize("key", sorted(PAPER_TABLE4))
    def test_class_label_matches_paper(self, key):
        slug, kernel = key
        estimates = reproduction_estimates(slug)
        assert kernel in estimates, f"{slug} lacks kernel {kernel}"
        assert estimates[kernel].parallelism_class == paper_class(slug,
                                                                  kernel)


class TestTable4Ordering:
    @pytest.mark.parametrize("slug", ORDERING_MATCHED)
    def test_within_benchmark_ordering(self, slug):
        estimates = reproduction_estimates(slug)
        paper_order = paper_kernel_order(slug)
        ours = sorted(
            paper_order, key=lambda k: -estimates[k].parallelism
        )
        assert ours == paper_order

    def test_every_table4_kernel_is_wide_or_narrow_as_published(self):
        """Kernels the paper measures in the thousands should be >100x
        here; kernels under 200x should stay under 1,000x."""
        for (slug, kernel), (value, _cls) in PAPER_TABLE4.items():
            ours = reproduction_estimates(slug)[kernel].parallelism
            if value >= 4_000:
                assert ours > 100, (slug, kernel, ours)
            if value <= 180:
                assert ours < 10_000, (slug, kernel, ours)

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            paper_kernel_order("texture")
        with pytest.raises(KeyError):
            paper_class("disparity", "Blend")


class TestFigure2Bands:
    def test_bands_cover_figure2_benchmarks(self):
        from repro.core import figure2_benchmarks

        assert set(FIGURE2_BANDS) == {b.slug for b in figure2_benchmarks()}

    @pytest.mark.parametrize("slug", ["disparity", "segmentation"])
    def test_measured_ratio_within_band(self, slug):
        """Spot-check the two extreme scaling shapes against their bands
        (the full sweep runs in bench_fig2_scaling)."""
        from repro.core import run_benchmark

        bench = get_benchmark(slug)
        small = run_benchmark(bench, InputSize.SQCIF, 0).total_seconds
        large = run_benchmark(bench, InputSize.CIF, 0).total_seconds
        low, high = FIGURE2_BANDS[slug]
        assert low <= large / small <= high
