"""Tests for the Image Stitch application."""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import overlapping_pair
from repro.stitch import (
    BENCHMARK,
    AffineModel,
    anms,
    apply_homography,
    describe_corners,
    detect_corners,
    fit_affine,
    fit_translation,
    harris_response,
    homography_dlt,
    local_maxima,
    match_features,
    match_points,
    ransac_affine,
    registration_error,
    stitch_pair,
    warp_and_blend,
)
from repro.stitch.corners import Corner


def corner_image(shape=(48, 48)):
    """A bright square on dark background: four strong corners."""
    img = np.zeros(shape)
    img[16:32, 16:32] = 1.0
    return img


class TestHarris:
    def test_corners_score_higher_than_edges(self):
        img = corner_image()
        response = harris_response(img)
        corner_val = response[16, 16]
        edge_val = response[16, 24]
        flat_val = response[4, 4]
        assert corner_val > edge_val
        assert corner_val > flat_val

    def test_local_maxima_near_square_corners(self):
        img = corner_image()
        corners = local_maxima(harris_response(img), border=4)
        assert len(corners) >= 4
        expected = [(16, 16), (16, 31), (31, 16), (31, 31)]
        for er, ec in expected:
            assert any(
                abs(c.row - er) <= 2 and abs(c.col - ec) <= 2
                for c in corners
            )

    def test_flat_image_no_corners(self):
        corners = local_maxima(harris_response(np.full((32, 32), 0.5)))
        assert corners == []


class TestAnms:
    def test_keeps_spread_of_corners(self):
        corners = [
            Corner(10, 10, 100.0),
            Corner(11, 11, 80.0),  # crowded by the stronger neighbour
            Corner(40, 40, 50.0),
            Corner(10, 40, 45.0),
        ]
        kept = anms(corners, n_keep=3)
        positions = {(c.row, c.col) for c in kept}
        assert (10, 10) in positions
        assert (40, 40) in positions
        assert (11, 11) not in positions

    def test_empty(self):
        assert anms([], n_keep=5) == []

    def test_cap_respected(self):
        corners = [Corner(i * 10, i * 10, 1.0 + i) for i in range(8)]
        assert len(anms(corners, n_keep=3)) == 3

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            anms([], n_keep=0)


class TestMatching:
    def test_identical_images_match_identity(self):
        img = np.random.default_rng(0).random((48, 64))
        corners = detect_corners(img, n_keep=20)
        described = describe_corners(img, corners)
        matches = match_features(described, described, ratio=1.01)
        assert matches
        assert all(i == j for i, j in matches)

    def test_match_points_shapes(self):
        img = np.random.default_rng(1).random((48, 64))
        corners = detect_corners(img, n_keep=10)
        described = describe_corners(img, corners)
        matches = match_features(described, described, ratio=1.01)
        src, dst = match_points(described, described, matches)
        assert src.shape == dst.shape == (len(matches), 2)

    def test_empty_inputs(self):
        assert match_features([], []) == []


class TestModels:
    def test_fit_translation(self):
        src = np.array([[0.0, 0.0], [1.0, 2.0]])
        dst = src + np.array([3.0, -1.0])
        model = fit_translation(src, dst)
        assert np.allclose(model.translation, [3.0, -1.0])
        assert np.allclose(model.matrix, np.eye(2))

    def test_fit_affine_recovers_transform(self):
        rng = np.random.default_rng(2)
        matrix = np.array([[1.1, 0.2], [-0.1, 0.9]])
        translation = np.array([4.0, -2.0])
        src = rng.random((10, 2)) * 20
        dst = src @ matrix.T + translation
        model = fit_affine(src, dst)
        assert np.allclose(model.matrix, matrix, atol=1e-8)
        assert np.allclose(model.translation, translation, atol=1e-8)

    def test_fit_affine_needs_three(self):
        with pytest.raises(ValueError):
            fit_affine(np.ones((2, 2)), np.ones((2, 2)))

    def test_ransac_rejects_outliers(self):
        rng = np.random.default_rng(3)
        src = rng.random((40, 2)) * 30
        dst = src + np.array([5.0, 7.0])
        dst[:8] += rng.random((8, 2)) * 40 + 10  # gross outliers
        result = ransac_affine(src, dst, inlier_threshold=1.0, seed=0)
        assert result.n_inliers >= 30
        assert np.allclose(result.model.translation, [5.0, 7.0], atol=0.1)
        assert not result.inliers[:8].any()

    def test_ransac_needs_three(self):
        with pytest.raises(ValueError):
            ransac_affine(np.ones((2, 2)), np.ones((2, 2)))

    def test_homography_identity_for_translation(self):
        rng = np.random.default_rng(4)
        src = rng.random((12, 2)) * 40
        dst = src + np.array([2.0, 9.0])
        h = homography_dlt(src, dst)
        mapped = apply_homography(h, src)
        assert np.allclose(mapped, dst, atol=1e-6)

    def test_homography_projective_case(self):
        h_true = np.array(
            [[1.0, 0.05, 3.0], [-0.03, 0.98, 1.0], [0.001, 0.0005, 1.0]]
        )
        rng = np.random.default_rng(5)
        src = rng.random((16, 2)) * 30
        dst = apply_homography(h_true, src)
        h = homography_dlt(src, dst)
        assert np.allclose(apply_homography(h, src), dst, atol=1e-6)

    def test_homography_needs_four(self):
        with pytest.raises(ValueError):
            homography_dlt(np.ones((3, 2)), np.ones((3, 2)))


class TestBlend:
    def test_identity_model_panorama(self):
        img = np.random.default_rng(6).random((24, 32))
        pano = warp_and_blend(img, img, AffineModel.identity())
        assert pano.coverage > 0.99
        interior = pano.image[4:-4, 4:-4]
        expected = img[
            4 - pano.offset[0] : 24 - 4 - pano.offset[0],
            4 - pano.offset[1] : 32 - 4 - pano.offset[1],
        ]
        assert np.abs(interior - expected).max() < 1e-9

    def test_translation_expands_canvas(self):
        img = np.random.default_rng(7).random((24, 32))
        model = AffineModel(matrix=np.eye(2),
                            translation=np.array([-6.0, -10.0]))
        pano = warp_and_blend(img, img, model)
        assert pano.image.shape[0] >= 30
        assert pano.image.shape[1] >= 42


class TestPipeline:
    def test_registers_synthetic_pair(self):
        pair = overlapping_pair(InputSize.SQCIF, 0)
        result = stitch_pair(pair.first, pair.second, seed=0)
        assert registration_error(result.model, pair.true_offset) < 1.0
        assert result.panorama.coverage > 0.8

    @pytest.mark.parametrize("variant", [1, 2])
    def test_variants(self, variant):
        pair = overlapping_pair(InputSize.SQCIF, variant)
        result = stitch_pair(pair.first, pair.second, seed=variant)
        assert registration_error(result.model, pair.true_offset) < 2.0

    def test_panorama_covers_union(self):
        pair = overlapping_pair(InputSize.SQCIF, 0)
        result = stitch_pair(pair.first, pair.second)
        rows, cols = pair.first.shape
        dy, dx = pair.true_offset
        assert result.panorama.image.shape[0] >= rows + dy - 2
        assert result.panorama.image.shape[1] >= cols + dx - 2

    def test_homography_close_to_affine(self):
        pair = overlapping_pair(InputSize.SQCIF, 0)
        result = stitch_pair(pair.first, pair.second)
        assert result.homography is not None
        # For a pure translation, H should be near-affine (tiny
        # projective terms).
        assert abs(result.homography[2, 0]) < 1e-3
        assert abs(result.homography[2, 1]) < 1e-3


class TestBenchmarkWiring:
    def test_run_and_kernels(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["registration_error"] < 1.0
        assert out["n_inliers"] >= 4
        for kernel in ("Convolution", "ANMS", "Match", "LSSolver", "SVD",
                       "Blend"):
            assert kernel in profiler.kernel_seconds

    def test_parallelism_ordering(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        # Table IV reports all three timed stitch kernels in the
        # thousands (LS Solver 20,900x, SVD 12,300x, Convolution 4,500x);
        # our structural models agree on the magnitude class.
        assert rows["LSSolver"].parallelism > 1000
        assert rows["SVD"].parallelism > 1000
        assert rows["Convolution"].parallelism > 1000
        # ANMS/Match/Blend are wide too but not in Table IV.
        assert rows["Match"].parallelism > rows["LSSolver"].parallelism
