"""Unit and property tests for the work/span dataflow analyzer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataflow import (
    Chain,
    Op,
    Par,
    ParMap,
    Reduce,
    Scan,
    Seq,
    TaskGraph,
    graph_from_model,
)


class TestCombinators:
    def test_op(self):
        m = Op(5)
        assert m.work == 5
        assert m.span == 5
        assert m.parallelism == 1.0

    def test_op_zero(self):
        m = Op(0)
        assert m.work == 0
        assert m.parallelism == 1.0

    def test_op_negative_rejected(self):
        with pytest.raises(ValueError):
            Op(-1)

    def test_seq_adds_both(self):
        m = Seq(Op(2), Op(3))
        assert (m.work, m.span) == (5, 5)

    def test_par_max_span(self):
        m = Par(Op(2), Op(7), Op(3))
        assert (m.work, m.span) == (12, 7)

    def test_parmap(self):
        m = ParMap(10, Op(3))
        assert (m.work, m.span) == (30, 3)
        assert m.parallelism == pytest.approx(10.0)

    def test_parmap_zero_iterations(self):
        m = ParMap(0, Op(3))
        assert (m.work, m.span) == (0, 0)

    def test_chain_multiplies_both(self):
        m = Chain(10, Op(3))
        assert (m.work, m.span) == (30, 30)
        assert m.parallelism == pytest.approx(1.0)

    def test_reduce_log_span(self):
        m = Reduce(8)
        assert m.work == 7
        assert m.span == 3

    def test_reduce_non_power_of_two(self):
        m = Reduce(9)
        assert m.work == 8
        assert m.span == math.ceil(math.log2(9))

    def test_reduce_trivial(self):
        assert Reduce(1).work == 0
        assert Reduce(0).work == 0

    def test_scan_work_and_span(self):
        m = Scan(16)
        assert m.work == 30
        assert m.span == 8

    def test_nested_composition(self):
        # A separable filter: two passes, each fully parallel over pixels.
        m = Seq(ParMap(100, Op(5)), ParMap(100, Op(5)))
        assert m.work == 1000
        assert m.span == 10
        assert m.parallelism == pytest.approx(100.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ParMap(-1, Op(1))
        with pytest.raises(ValueError):
            Chain(-1, Op(1))
        with pytest.raises(ValueError):
            Reduce(-1)


class TestTaskGraph:
    def test_empty_graph(self):
        g = TaskGraph()
        assert (g.work, g.span) == (0, 0)
        assert g.parallelism == 1.0

    def test_serial_chain(self):
        g = TaskGraph()
        g.add("a", 2)
        g.add("b", 3, deps=["a"])
        assert (g.work, g.span) == (5, 5)

    def test_parallel_tasks(self):
        g = TaskGraph()
        g.add("a", 4)
        g.add("b", 4)
        assert (g.work, g.span) == (8, 4)
        assert g.parallelism == pytest.approx(2.0)

    def test_diamond(self):
        g = TaskGraph()
        g.add("src", 1)
        g.add("left", 5, deps=["src"])
        g.add("right", 2, deps=["src"])
        g.add("sink", 1, deps=["left", "right"])
        assert g.work == 9
        assert g.span == 7  # src -> left -> sink

    def test_unknown_dep_raises(self):
        g = TaskGraph()
        with pytest.raises(KeyError):
            g.add("a", 1, deps=["ghost"])

    def test_duplicate_task_raises(self):
        g = TaskGraph()
        g.add("a", 1)
        with pytest.raises(ValueError):
            g.add("a", 1)

    def test_contains_and_len(self):
        g = TaskGraph()
        g.add("a", 1)
        assert "a" in g
        assert len(g) == 1


class TestModelGraphAgreement:
    """graph_from_model must agree exactly with the combinator algebra."""

    @given(st.integers(min_value=0, max_value=20))
    def test_op(self, n):
        m = Op(n)
        g = graph_from_model(m)
        assert (g.work, g.span) == (m.work, m.span)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
    )
    def test_parmap(self, n, cost):
        m = ParMap(n, Op(cost))
        g = graph_from_model(m)
        assert (g.work, g.span) == (m.work, m.span)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
    )
    def test_chain(self, n, cost):
        m = Chain(n, Op(cost))
        g = graph_from_model(m)
        assert (g.work, g.span) == (m.work, m.span)

    @given(st.integers(min_value=2, max_value=64))
    def test_reduce(self, n):
        m = Reduce(n)
        g = graph_from_model(m)
        assert (g.work, g.span) == (m.work, m.span)

    @given(st.sampled_from([2, 4, 8, 16, 32]))
    def test_scan_power_of_two(self, n):
        m = Scan(n)
        g = graph_from_model(m)
        assert (g.work, g.span) == (m.work, m.span)

    @settings(max_examples=30)
    @given(st.recursive(
        st.integers(min_value=1, max_value=4).map(Op),
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(lambda l: Seq(*l)),
            st.lists(children, min_size=1, max_size=3).map(lambda l: Par(*l)),
            st.tuples(st.integers(1, 3), children).map(
                lambda t: ParMap(t[0], t[1])
            ),
            st.tuples(st.integers(1, 3), children).map(
                lambda t: Chain(t[0], t[1])
            ),
        ),
        max_leaves=6,
    ))
    def test_arbitrary_composition(self, model):
        g = graph_from_model(model)
        assert (g.work, g.span) == (model.work, model.span)

    @settings(max_examples=30)
    @given(st.recursive(
        st.integers(min_value=1, max_value=4).map(Op),
        lambda children: st.lists(children, min_size=1, max_size=3).map(
            lambda l: Seq(*l)
        ),
        max_leaves=6,
    ))
    def test_span_never_exceeds_work(self, model):
        assert model.span <= model.work
        assert model.parallelism >= 1.0 or model.work == 0
