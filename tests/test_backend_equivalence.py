"""Parametrized ref-vs-fast agreement for every registered fast kernel.

One test per (kernel, size): the equivalence harness builds the
deterministic cases from the seeded input generators and asserts the
loop-faithful reference and the vectorized fast path agree within the
kernel's documented tolerance.  SQCIF additionally sweeps a second input
variant, so variant-dependent control flow (warp angles, stereo
textures) is covered without tripling the suite's runtime.
"""

import pytest

from repro.core.backend import get_kernel, load_all_kernels, registered_kernels
from repro.core.equivalence import (
    CASE_BUILDERS,
    cases_for,
    render_equivalence,
    verify_kernel,
)
from repro.core.types import InputSize

load_all_kernels()

FAST_KERNELS = tuple(
    spec.name for spec in registered_kernels() if spec.fast is not None
)

ALL_SIZES = (InputSize.SQCIF, InputSize.QCIF, InputSize.CIF)


def test_every_fast_kernel_has_cases():
    assert set(FAST_KERNELS) <= set(CASE_BUILDERS)


def test_cases_are_deterministic():
    spec = get_kernel("disparity.ssd")
    first = cases_for(spec, InputSize.SQCIF, 0)
    second = cases_for(spec, InputSize.SQCIF, 0)
    assert [label for label, _ in first] == [label for label, _ in second]
    for (_, a), (_, b) in zip(first, second):
        for left, right in zip(a, b):
            assert repr(left) == repr(right)


@pytest.mark.parametrize("size", ALL_SIZES, ids=lambda s: s.name)
@pytest.mark.parametrize("name", FAST_KERNELS)
def test_ref_fast_agreement(name, size):
    spec = get_kernel(name)
    variants = (0, 1) if size is InputSize.SQCIF else (0,)
    verdicts = verify_kernel(spec, sizes=(size,), variants=variants)
    assert verdicts, f"no equivalence cases for {name}"
    failed = [v for v in verdicts if not v.ok]
    assert not failed, render_equivalence(failed)


def test_unknown_kernel_has_no_cases():
    spec = get_kernel("disparity.ssd")
    orphan = type(spec)(name="no.cases", paper_kernel="X",
                        apps=("disparity",), ref=lambda: None)
    with pytest.raises(KeyError, match="no equivalence cases"):
        cases_for(orphan, InputSize.SQCIF, 0)
