"""Report-renderer edge cases plus extra hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.report import (
    _format_parallelism,
    format_table,
    render_figure2,
    render_table4,
)
from repro.core.runner import scaling_series
from repro.core.types import BenchmarkRun, InputSize, ParallelismClass, \
    ParallelismEstimate, SuiteResult
from repro.imgproc.filters import gaussian_blur
from repro.imgproc.integral import integral_image, rect_sum
from repro.imgproc.interpolate import bilinear, resize
from repro.imgproc.pad import pad

images = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(5, 14), st.integers(5, 14)),
    elements=st.floats(0, 1, allow_nan=False),
)


class TestFormatTable:
    def test_column_widths_fit_content(self):
        text = format_table(("A", "Long header"),
                            [("wide cell here", "x")])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_title_included(self):
        assert format_table(("A",), [("1",)], title="My Title").startswith(
            "My Title"
        )

    def test_empty_rows(self):
        text = format_table(("A", "B"), [])
        assert "A" in text and "B" in text

    def test_non_string_cells(self):
        text = format_table(("A",), [(42,)])
        assert "42" in text


class TestFormatParallelism:
    def test_thousands_comma(self):
        assert _format_parallelism(12345.6) == "12,346x"

    def test_tens(self):
        assert _format_parallelism(42.4) == "42x"

    def test_small(self):
        assert _format_parallelism(1.0) == "1.0x"


class TestScalingSeries:
    def _result(self, times):
        result = SuiteResult()
        for size, t in zip(InputSize, times):
            result.runs.append(
                BenchmarkRun(benchmark="demo", size=size, variant=0,
                             total_seconds=t)
            )
        return result

    def test_normalized_to_sqcif(self):
        series = scaling_series(self._result([1.0, 2.0, 4.0]), "demo")
        assert [p.relative_time for p in series] == [1.0, 2.0, 4.0]

    def test_missing_base_falls_back_to_smallest_present(self):
        result = SuiteResult()
        result.runs.append(
            BenchmarkRun(benchmark="demo", size=InputSize.CIF, variant=0,
                         total_seconds=1.0)
        )
        with pytest.warns(RuntimeWarning, match="smallest size present"):
            series = scaling_series(result, "demo")
        assert [p.relative_size for p in series] == [4]
        assert series[0].relative_time == pytest.approx(1.0)

    def test_unknown_benchmark_empty(self):
        assert scaling_series(self._result([1.0, 2.0, 4.0]), "ghost") == []

    def test_figure2_renders_missing_sizes(self):
        result = SuiteResult()
        result.runs.append(
            BenchmarkRun(benchmark="demo", size=InputSize.SQCIF,
                         variant=0, total_seconds=1.0)
        )
        text = render_figure2(result, ["demo"])
        assert "1.00x" in text
        assert "-" in text  # missing sizes dashed


class TestRenderTable4Explicit:
    def test_accepts_precomputed_estimates(self):
        estimate = ParallelismEstimate(
            benchmark="demo", kernel="K", parallelism=123.0,
            parallelism_class=ParallelismClass.DLP, work=123, span=1,
        )
        text = render_table4({"demo": [estimate]})
        assert "123x" in text
        assert "DLP" in text


class TestImgprocProperties:
    @settings(max_examples=25)
    @given(images)
    def test_blur_idempotent_on_constant_regions(self, img):
        const = np.full_like(img, 0.5)
        assert np.allclose(gaussian_blur(const, 1.0), const)

    @settings(max_examples=25)
    @given(images, st.floats(0, 1), st.floats(0, 1))
    def test_bilinear_within_convex_hull(self, img, fr, fc):
        rows, cols = img.shape
        r = fr * (rows - 1)
        c = fc * (cols - 1)
        value = float(bilinear(img, r, c))
        assert img.min() - 1e-9 <= value <= img.max() + 1e-9

    @settings(max_examples=25)
    @given(images)
    def test_resize_preserves_range(self, img):
        out = resize(img, 7, 9)
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9

    @settings(max_examples=25)
    @given(images)
    def test_integral_monotone_in_rectangle_growth(self, img):
        # For non-negative images, growing the rectangle never shrinks
        # the sum.
        ii = integral_image(np.abs(img))
        rows, cols = img.shape
        small = rect_sum(ii, 0, 0, rows // 2, cols // 2)
        large = rect_sum(ii, 0, 0, rows, cols)
        assert large >= small - 1e-9

    @settings(max_examples=25)
    @given(images, st.integers(0, 3))
    def test_pad_preserves_interior(self, img, amount):
        padded = pad(img, amount, "replicate")
        rows, cols = img.shape
        assert np.array_equal(
            padded[amount : amount + rows, amount : amount + cols], img
        )

    @settings(max_examples=25)
    @given(images)
    def test_rect_sum_additive(self, img):
        """Splitting a rectangle in two partitions its sum."""
        ii = integral_image(img)
        rows, cols = img.shape
        mid = cols // 2
        whole = rect_sum(ii, 0, 0, rows, cols)
        left = rect_sum(ii, 0, 0, rows, mid)
        right = rect_sum(ii, 0, mid, rows, cols)
        assert whole == pytest.approx(left + right, abs=1e-8)
