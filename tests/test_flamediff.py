"""Tests for differential flamegraphs and regression attribution."""

import pytest

from repro.core.flamediff import (
    FLAMEDIFF_SCHEMA,
    attribute_delta,
    diff_profiles,
    render_diff,
    to_collapsed_delta,
)
from repro.core.sampling import SampledProfile


def make_profile(folded, kernel_seconds, interval=0.001):
    """A profile with explicit folded stacks and kernel attribution."""
    return SampledProfile(
        interval=interval,
        samples=sum(1 for _ in folded),
        folded=dict(folded),
        kernel_seconds=dict(kernel_seconds),
        observable=tuple(k for k in kernel_seconds if k != "NonKernelWork"),
    )


def slowdown_pair(factor=3.0):
    """Baseline + candidate where only the SSD stacks got slower."""
    baseline = make_profile(
        {("main", "dispatch", "ssd"): 0.004,
         ("main", "dispatch", "sort"): 0.003},
        {"SSD": 0.004, "Sort": 0.003},
    )
    candidate = make_profile(
        {("main", "dispatch", "ssd"): 0.004 * factor,
         ("main", "dispatch", "sort"): 0.003},
        {"SSD": 0.004 * factor, "Sort": 0.003},
    )
    return baseline, candidate


class TestDiffProfiles:
    def test_injected_slowdown_has_positive_sign(self):
        baseline, candidate = slowdown_pair()
        diff = diff_profiles(baseline, candidate)
        assert diff.stacks[("main", "dispatch", "ssd")] == \
            pytest.approx(0.008)
        assert diff.stacks[("main", "dispatch", "sort")] == \
            pytest.approx(0.0)
        assert diff.delta_seconds == pytest.approx(0.008)

    def test_improvement_has_negative_sign(self):
        baseline, candidate = slowdown_pair()
        diff = diff_profiles(candidate, baseline)  # swapped: got faster
        assert diff.stacks[("main", "dispatch", "ssd")] == \
            pytest.approx(-0.008)
        assert diff.delta_seconds == pytest.approx(-0.008)

    def test_stack_present_on_one_side_aligns_against_zero(self):
        baseline = make_profile({("a", "b"): 0.002}, {"A": 0.002})
        candidate = make_profile({("a", "c"): 0.005}, {"A": 0.005})
        diff = diff_profiles(baseline, candidate)
        assert diff.stacks[("a", "b")] == pytest.approx(-0.002)
        assert diff.stacks[("a", "c")] == pytest.approx(0.005)

    def test_top_kernels_ranks_slowdown_first(self):
        baseline, candidate = slowdown_pair()
        diff = diff_profiles(baseline, candidate)
        top = diff.top_kernels(5)
        assert top[0].kernel == "SSD"
        assert top[0].delta == pytest.approx(0.008)
        # Sort did not move; zero-delta kernels are not listed.
        assert all(k.kernel != "Sort" for k in top)

    def test_top_frames_ranks_by_self_not_inclusive(self):
        # "main" inherits the full inclusive delta but has no self
        # time; ranking by self time must name the leaf that actually
        # slowed down, not the root.
        baseline, candidate = slowdown_pair()
        diff = diff_profiles(baseline, candidate)
        top = diff.top_frames(3)
        assert top[0].frame == "ssd"
        assert top[0].self_delta == pytest.approx(0.008)
        main = next(f for f in diff.frames if f.frame == "main")
        assert main.self_delta == pytest.approx(0.0)
        assert main.inclusive_delta == pytest.approx(0.008)

    def test_recursive_frame_counted_once_per_stack(self):
        baseline = make_profile({("f", "f", "f"): 0.002}, {"F": 0.002})
        candidate = make_profile({("f", "f", "f"): 0.006}, {"F": 0.006})
        diff = diff_profiles(baseline, candidate)
        frame = next(f for f in diff.frames if f.frame == "f")
        # Inclusive charge is once per stack, not once per occurrence.
        assert frame.inclusive_before == pytest.approx(0.002)
        assert frame.inclusive_after == pytest.approx(0.006)
        assert frame.self_delta == pytest.approx(0.004)

    def test_to_dict_schema_and_labels(self):
        baseline, candidate = slowdown_pair()
        diff = diff_profiles(baseline, candidate,
                             baseline_label="aaa", candidate_label="bbb")
        payload = diff.to_dict()
        assert payload["schema"] == FLAMEDIFF_SCHEMA
        assert payload["baseline"] == "aaa"
        assert payload["candidate"] == "bbb"
        assert payload["kernels"][0]["kernel"] == "SSD"
        assert payload["delta_seconds"] == pytest.approx(0.008)


class TestCollapsedDelta:
    def test_signed_microseconds(self):
        baseline, candidate = slowdown_pair()
        lines = to_collapsed_delta(
            diff_profiles(baseline, candidate)).splitlines()
        assert "main;dispatch;ssd +8000" in lines
        # Zero-delta stacks are omitted entirely.
        assert not any("sort" in line for line in lines)

    def test_negative_delta_keeps_minus(self):
        baseline, candidate = slowdown_pair()
        text = to_collapsed_delta(diff_profiles(candidate, baseline))
        assert "main;dispatch;ssd -8000" in text

    def test_frames_are_escaped(self):
        baseline = make_profile({("a b", "c;d"): 0.001}, {"A": 0.001})
        candidate = make_profile({("a b", "c;d"): 0.003}, {"A": 0.003})
        text = to_collapsed_delta(diff_profiles(baseline, candidate))
        assert "a%20b;c%3Bd +2000" in text

    def test_identical_profiles_empty(self):
        baseline, _ = slowdown_pair()
        assert to_collapsed_delta(
            diff_profiles(baseline, baseline)) == ""


class TestAttribution:
    def test_injected_slowdown_names_the_kernel(self):
        baseline, candidate = slowdown_pair(factor=1.5)
        block = attribute_delta(diff_profiles(baseline, candidate))
        assert block["kernels"][0]["kernel"] == "SSD"
        assert block["kernels"][0]["share_of_delta"] == pytest.approx(1.0)
        assert block["slowdown_seconds"] == pytest.approx(0.002)
        assert block["frames"][0]["frame"] == "ssd"

    def test_offsetting_improvement_cannot_exceed_full_share(self):
        baseline = make_profile(
            {("m", "ssd"): 0.004, ("m", "sort"): 0.006},
            {"SSD": 0.004, "Sort": 0.006})
        candidate = make_profile(
            {("m", "ssd"): 0.012, ("m", "sort"): 0.002},
            {"SSD": 0.012, "Sort": 0.002})
        block = attribute_delta(diff_profiles(baseline, candidate))
        # Net delta is +0.004 but the slowdown is +0.008; shares are
        # normalized by the positive sum, so SSD owns exactly 100%.
        assert block["delta_seconds"] == pytest.approx(0.004)
        assert block["slowdown_seconds"] == pytest.approx(0.008)
        assert block["kernels"][0]["share_of_delta"] == pytest.approx(1.0)
        assert all(k["kernel"] != "Sort" for k in block["kernels"])

    def test_nothing_slower_yields_empty_kernels(self):
        baseline, candidate = slowdown_pair()
        block = attribute_delta(diff_profiles(candidate, baseline))
        assert block["kernels"] == []
        assert block["slowdown_seconds"] == pytest.approx(0.0)

    def test_two_guilty_kernels_split_the_share(self):
        baseline = make_profile(
            {("m", "a"): 0.002, ("m", "b"): 0.002},
            {"A": 0.002, "B": 0.002})
        candidate = make_profile(
            {("m", "a"): 0.008, ("m", "b"): 0.004},
            {"A": 0.008, "B": 0.004})
        block = attribute_delta(diff_profiles(baseline, candidate))
        assert [k["kernel"] for k in block["kernels"]] == ["A", "B"]
        assert block["kernels"][0]["share_of_delta"] == pytest.approx(0.75)
        assert block["kernels"][1]["share_of_delta"] == pytest.approx(0.25)


class TestRenderDiff:
    def test_text_table_carries_labels_and_deltas(self):
        baseline, candidate = slowdown_pair()
        diff = diff_profiles(baseline, candidate,
                             baseline_label="before",
                             candidate_label="after")
        text = render_diff(diff)
        assert "before -> after" in text
        assert "SSD" in text
        assert "+0.0080" in text


def regressed_report():
    """A one-cell report where demo@QCIF clearly regressed 50%."""
    from repro.core.regress import detect_regressions

    cells_base = {("demo", "QCIF"): (0.010, 0.0001)}
    cells_cand = {("demo", "QCIF"): (0.015, 0.0001)}
    return detect_regressions(cells_base, cells_cand)


class TestRegressAttribution:
    def test_attribute_regressions_joins_regressed_cells(self):
        from repro.core.regress import STATUS_REGRESSION, \
            attribute_regressions

        baseline, candidate = slowdown_pair(factor=1.5)
        report = regressed_report()
        assert report.entries[0].status == STATUS_REGRESSION

        def lookup(benchmark, size):
            assert benchmark == "demo" and size == "QCIF"
            return baseline, candidate

        assert attribute_regressions(report, lookup) == 1
        entry = report.entries[0]
        assert entry.attribution["kernels"][0]["kernel"] == "SSD"
        assert entry.to_dict()["attribution"] == entry.attribution

    def test_latency_cell_attributes_via_base_benchmark(self):
        from repro.core.regress import base_benchmark

        assert base_benchmark("disparity[p99]") == "disparity"
        assert base_benchmark("disparity") == "disparity"
        assert base_benchmark("[odd]") == "[odd]"

    def test_latency_cell_lookup_receives_base_slug(self):
        from repro.core.regress import attribute_regressions, \
            detect_regressions

        cells_base = {("disparity[p99]", "CIF"): (0.010, 0.0001)}
        cells_cand = {("disparity[p99]", "CIF"): (0.015, 0.0001)}
        report = detect_regressions(cells_base, cells_cand)
        seen = []
        baseline, candidate = slowdown_pair(factor=1.5)

        def lookup(benchmark, size):
            seen.append((benchmark, size))
            return baseline, candidate

        assert attribute_regressions(report, lookup) == 1
        assert seen == [("disparity", "CIF")]

    def test_missing_profiles_leave_attribution_none(self):
        from repro.core.regress import attribute_regressions

        report = regressed_report()
        assert attribute_regressions(report, lambda b, s: None) == 0
        entry = report.entries[0]
        assert entry.attribution is None
        assert "attribution" not in entry.to_dict()
