"""Unit and property tests for padding and convolution kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.imgproc.convolution import (
    convolve2d,
    convolve_cols,
    convolve_rows,
    convolve_separable,
)
from repro.imgproc.pad import pad, unpad

small_images = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 12), st.integers(4, 12)),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestPad:
    def test_zero_mode(self):
        img = np.ones((3, 3))
        out = pad(img, 1, "zero")
        assert out.shape == (5, 5)
        assert out[0, 0] == 0.0
        assert out[1:-1, 1:-1].sum() == 9.0

    def test_replicate_mode(self):
        img = np.arange(6, dtype=np.float64).reshape(2, 3)
        out = pad(img, 2, "replicate")
        assert out[0, 0] == img[0, 0]
        assert out[-1, -1] == img[-1, -1]

    def test_reflect_mode(self):
        img = np.arange(9, dtype=np.float64).reshape(3, 3)
        out = pad(img, 1, "reflect")
        assert out[0, 1] == img[1, 0 + 1 - 1]  # mirrored row 1

    def test_amount_zero_copies(self):
        img = np.random.default_rng(0).random((4, 4))
        out = pad(img, 0)
        assert np.array_equal(out, img)
        assert out is not img

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            pad(np.ones((3, 3)), 1, "wrap")

    def test_reflect_too_large(self):
        with pytest.raises(ValueError):
            pad(np.ones((3, 3)), 3, "reflect")

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            pad(np.ones(3), 1)

    @given(small_images, st.integers(0, 3))
    def test_unpad_inverts_pad(self, img, amount):
        for mode in ("replicate", "zero"):
            assert np.array_equal(unpad(pad(img, amount, mode), amount), img)

    def test_unpad_too_much(self):
        with pytest.raises(ValueError):
            unpad(np.ones((4, 4)), 2)


class TestConvolve1D:
    def test_identity_kernel(self):
        img = np.random.default_rng(0).random((6, 7))
        ident = np.array([0.0, 1.0, 0.0])
        assert np.allclose(convolve_rows(img, ident), img)
        assert np.allclose(convolve_cols(img, ident), img)

    def test_shift_kernel_rows(self):
        img = np.arange(12, dtype=np.float64).reshape(3, 4)
        # Correlation with [1, 0, 0] picks the left neighbour.
        left = convolve_rows(img, np.array([1.0, 0.0, 0.0]))
        assert np.allclose(left[:, 1:], img[:, :-1])

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            convolve_rows(np.ones((4, 4)), np.array([1.0, 1.0]))

    def test_constant_preserved_by_normalized_kernel(self):
        img = np.full((5, 9), 3.7)
        kernel = np.array([0.25, 0.5, 0.25])
        assert np.allclose(convolve_rows(img, kernel), img)
        assert np.allclose(convolve_cols(img, kernel), img)

    @given(small_images)
    def test_linearity(self, img):
        kernel = np.array([0.2, 0.5, 0.3])
        lhs = convolve_rows(2.0 * img, kernel)
        rhs = 2.0 * convolve_rows(img, kernel)
        assert np.allclose(lhs, rhs)

    @given(small_images)
    def test_rows_cols_commute(self, img):
        k1 = np.array([0.25, 0.5, 0.25])
        k2 = np.array([-0.5, 0.0, 0.5])
        a = convolve_rows(convolve_cols(img, k1), k2)
        b = convolve_cols(convolve_rows(img, k2), k1)
        assert np.allclose(a, b, atol=1e-12)


class TestConvolve2D:
    def test_identity(self):
        img = np.random.default_rng(1).random((5, 6))
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        assert np.allclose(convolve2d(img, kernel), img)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            convolve2d(np.ones((4, 4)), np.ones((2, 3)))

    def test_matches_separable_in_interior(self):
        rng = np.random.default_rng(2)
        img = rng.random((12, 14))
        row_k = np.array([0.25, 0.5, 0.25])
        col_k = np.array([0.1, 0.8, 0.1])
        full = convolve2d(img, np.outer(col_k, row_k))
        sep = convolve_separable(img, row_k, col_k)
        # Borders differ (two-pass padding); interiors agree exactly.
        assert np.allclose(full[2:-2, 2:-2], sep[2:-2, 2:-2], atol=1e-12)

    def test_asymmetric_kernel_shape(self):
        img = np.random.default_rng(3).random((8, 8))
        kernel = np.ones((1, 5)) / 5.0
        out = convolve2d(img, kernel)
        assert out.shape == img.shape

    @given(small_images)
    def test_sum_preserved_by_averaging_kernel(self, img):
        kernel = np.ones((3, 3)) / 9.0
        out = convolve2d(img, kernel)
        # Mean is approximately preserved (replicate borders keep range).
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9
