"""Tests for track monitoring, SIFT-based stitching and MCL recovery."""

import math

import numpy as np
import pytest

from repro.core import InputSize
from repro.core.inputs import overlapping_pair, robot_world, sequence
from repro.localization import MonteCarloLocalizer, ParticleSet, \
    default_particle_count, position_error
from repro.stitch import registration_error
from repro.stitch.sift_registration import sift_match_points, stitch_pair_sift
from repro.tracking import Feature, good_features
from repro.tracking.monitor import (
    forward_backward_tracks,
    surviving_features,
    track_with_monitoring,
)


class TestForwardBackward:
    def test_clean_translation_all_valid(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=2)
        features = good_features(seq.frames[0], max_features=24)
        validated = forward_backward_tracks(seq.frames[0], seq.frames[1],
                                            features)
        assert all(v.valid for v in validated)
        assert max(v.backward_error for v in validated) < 0.1

    def test_corrupted_region_fails_check(self):
        seq = sequence(InputSize.SQCIF, 1, n_frames=2)
        features = good_features(seq.frames[0], max_features=24)
        # Destroy the second frame's upper half: tracks there cannot
        # round-trip.
        corrupted = seq.frames[1].copy()
        corrupted[: corrupted.shape[0] // 2] = 0.5
        validated = forward_backward_tracks(seq.frames[0], corrupted,
                                            features, max_error=0.5)
        upper = [
            v for v in validated
            if v.forward.start[0] < corrupted.shape[0] // 2 - 8
        ]
        lower = [
            v for v in validated
            if v.forward.start[0] > corrupted.shape[0] // 2 + 8
        ]
        assert upper, "expected features in the corrupted half"
        assert sum(v.valid for v in upper) <= len(upper) // 2
        assert sum(v.valid for v in lower) >= max(1, len(lower) - 2)

    def test_surviving_features_positions(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=2)
        features = good_features(seq.frames[0], max_features=10)
        validated = forward_backward_tracks(seq.frames[0], seq.frames[1],
                                            features)
        survivors = surviving_features(validated)
        assert len(survivors) == sum(v.valid for v in validated)
        for feature, track in zip(survivors,
                                  [v for v in validated if v.valid]):
            assert feature.row == track.forward.end[0]

    def test_monitoring_through_sequence(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=4)
        features = good_features(seq.frames[0], max_features=20)
        history = track_with_monitoring(seq.frames, features)
        assert len(history) == 3
        # Population can only shrink.
        sizes = [len(step) for step in history]
        assert sizes == sorted(sizes, reverse=True)

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            track_with_monitoring([np.ones((16, 16))], [])

    def test_empty_population_propagates(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=3)
        history = track_with_monitoring(seq.frames, [])
        assert history == [[], []]


class TestSiftStitch:
    def test_registers_pair(self):
        pair = overlapping_pair(InputSize.SQCIF, 0)
        result = stitch_pair_sift(pair.first, pair.second, seed=0)
        assert result.n_matches > 20
        assert registration_error(result.model, pair.true_offset) < 1.0
        assert result.panorama.coverage > 0.8

    def test_match_points_shapes(self):
        pair = overlapping_pair(InputSize.SQCIF, 1)
        src, dst, counts = sift_match_points(pair.first, pair.second)
        assert src.shape == dst.shape
        assert src.shape[1] == 2
        assert counts[0] > 0 and counts[1] > 0

    def test_agrees_with_harris_pipeline(self):
        from repro.stitch import stitch_pair

        pair = overlapping_pair(InputSize.SQCIF, 2)
        harris = stitch_pair(pair.first, pair.second, seed=2)
        sift = stitch_pair_sift(pair.first, pair.second, seed=2)
        assert np.allclose(
            harris.model.translation, sift.model.translation, atol=1.0
        )


class TestKidnappedRobot:
    def test_recovery_after_confident_wrong_start(self):
        """Tracking mode initialized at the wrong pose: the augmented-MCL
        recovery injection must relocalize within the trace."""
        world = robot_world(InputSize.SQCIF, 0, n_steps=48)
        n = default_particle_count(world)
        localizer = MonteCarloLocalizer(world=world, n_particles=n, seed=0)
        # Confidently wrong: a tight cluster far from the true start.
        x0, y0, t0 = world.start_pose
        wrong_x = world.grid.shape[1] - x0
        rng = np.random.default_rng(1)
        free = world.grid[
            np.clip(int(y0), 0, None), np.clip(int(wrong_x), 0, None)
        ]
        localizer.particles = ParticleSet(
            x=np.clip(wrong_x + rng.normal(0, 0.3, n), 1.0,
                      world.grid.shape[1] - 1.001),
            y=np.clip(y0 + rng.normal(0, 0.3, n), 1.0,
                      world.grid.shape[0] - 1.001),
            theta=t0 + rng.normal(0, 0.05, n),
            weights=np.full(n, 1.0 / n),
        )
        del free
        estimates = []
        for control, ranges in zip(world.controls, world.measurements):
            estimates.append(localizer.step(control, ranges))
        final_error = position_error(estimates, world.true_poses)
        assert final_error < 2.0

    def test_recovery_injection_responds_to_bad_likelihood(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=8)
        localizer = MonteCarloLocalizer(world=world, n_particles=200,
                                        seed=0)
        # Feed measurements consistent with the true pose: w_fast stays
        # near w_slow, so the recovery deficit is small.
        for control, ranges in zip(world.controls, world.measurements):
            localizer.step(control, ranges)
        assert localizer._w_slow > 0.0
        healthy_ratio = localizer._w_fast / localizer._w_slow
        # Now feed garbage measurements: w_fast collapses.
        garbage = np.full(world.n_beams, world.max_range)
        localizer.measurement_update(garbage)
        localizer.measurement_update(garbage)
        assert localizer._w_fast / localizer._w_slow < healthy_ratio
