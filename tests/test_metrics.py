"""Tests for work-accounting metrics: registry, work models, dispatch."""

import pytest

from repro.core.backend import get_kernel, registered_kernels, use_backend
from repro.core.equivalence import cases_for
from repro.core.metrics import (
    FLOAT_BYTES,
    KernelWork,
    MetricsRegistry,
    WorkEstimate,
    active_metrics,
    analytic_work,
    kernel_work_from_dict,
    use_metrics,
    work_model_table,
)
from repro.core.types import InputSize


class TestWorkEstimate:
    def test_arithmetic_intensity(self):
        est = WorkEstimate(flops=32.0, traffic_bytes=16.0)
        assert est.arithmetic_intensity == 2.0

    def test_zero_traffic_intensity(self):
        assert WorkEstimate(flops=5.0, traffic_bytes=0.0) \
            .arithmetic_intensity == 0.0

    def test_addition(self):
        total = WorkEstimate(1.0, 2.0) + WorkEstimate(3.0, 4.0)
        assert total == WorkEstimate(4.0, 6.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WorkEstimate(flops=-1.0, traffic_bytes=0.0)


class TestKernelWork:
    def test_accumulates_calls(self):
        work = KernelWork(kernel="demo")
        work.add(WorkEstimate(100.0, 50.0), 0.5)
        work.add(WorkEstimate(100.0, 50.0), 0.5)
        assert work.calls == 2
        assert work.flops == 200.0
        assert work.traffic_bytes == 100.0
        assert work.seconds == 1.0

    def test_derived_rates(self):
        work = KernelWork(kernel="demo", calls=1, flops=2e9,
                          traffic_bytes=1e9, seconds=2.0)
        assert work.gflops_per_second == pytest.approx(1.0)
        assert work.gbytes_per_second == pytest.approx(0.5)
        assert work.arithmetic_intensity == pytest.approx(2.0)

    def test_zero_seconds_rates(self):
        work = KernelWork(kernel="demo", flops=1.0, traffic_bytes=1.0)
        assert work.gflops_per_second == 0.0
        assert work.gbytes_per_second == 0.0

    def test_dict_roundtrip(self):
        work = KernelWork(kernel="demo", calls=3, flops=10.0,
                          traffic_bytes=20.0, seconds=0.25)
        restored = KernelWork.from_dict("demo", work.to_dict())
        assert restored == work


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("calls")
        registry.inc("calls", 2.0)
        assert registry.counters == {"calls": 3.0}

    def test_gauges_keep_latest(self):
        registry = MetricsRegistry()
        registry.set_gauge("temp", 1.0)
        registry.set_gauge("temp", 7.0)
        assert registry.gauges == {"temp": 7.0}

    def test_histograms_retain_samples(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("lat", value)
        assert registry.histogram("lat") == [1.0, 2.0, 3.0]
        assert registry.histogram("missing") == []

    def test_record_work_groups_by_kernel(self):
        registry = MetricsRegistry()
        registry.record_work("a", WorkEstimate(1.0, 2.0), 0.1)
        registry.record_work("a", WorkEstimate(1.0, 2.0), 0.1)
        registry.record_work("b", WorkEstimate(5.0, 5.0), 0.2)
        work = registry.kernel_work
        assert work["a"].calls == 2
        assert work["b"].flops == 5.0

    def test_to_dict_summarizes_histograms(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.set_gauge("g", 4.0)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        registry.record_work("k", WorkEstimate(8.0, 4.0), 0.5)
        payload = registry.to_dict()
        assert payload["counters"] == {"n": 1.0}
        assert payload["gauges"] == {"g": 4.0}
        assert payload["histograms"]["h"] == {
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }
        assert payload["kernels"]["k"]["flops"] == 8.0
        restored = kernel_work_from_dict(payload)
        assert restored["k"].traffic_bytes == 4.0


class TestUseMetrics:
    def test_scoped_selection_restores(self):
        registry = MetricsRegistry()
        assert active_metrics() is None
        with use_metrics(registry):
            assert active_metrics() is registry
            inner = MetricsRegistry()
            with use_metrics(inner):
                assert active_metrics() is inner
            assert active_metrics() is registry
        assert active_metrics() is None

    def test_restored_after_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_metrics(registry):
                raise RuntimeError("boom")
        assert active_metrics() is None


class TestDispatchRecordsWork:
    def test_dispatched_call_records_into_active_registry(self):
        spec = get_kernel("disparity.ssd")
        cases = cases_for(spec, InputSize.SQCIF, 0)
        _, args = cases[0]
        registry = MetricsRegistry()
        from repro.disparity.algorithm import ssd_map
        with use_metrics(registry):
            ssd_map(*args)
        work = registry.kernel_work["disparity.ssd"]
        assert work.calls == 1
        expected = spec.work(*args)
        assert work.flops == expected.flops
        assert work.traffic_bytes == expected.traffic_bytes
        assert work.seconds > 0.0

    def test_no_active_registry_records_nothing(self):
        spec = get_kernel("disparity.ssd")
        _, args = cases_for(spec, InputSize.SQCIF, 0)[0]
        from repro.disparity.algorithm import ssd_map
        ssd_map(*args)  # must not raise, must not record anywhere
        assert active_metrics() is None

    def test_ref_backend_records_too(self):
        spec = get_kernel("tracking.min_eigenvalue")
        _, args = cases_for(spec, InputSize.SQCIF, 0)[0]
        registry = MetricsRegistry()
        from repro.tracking.features import min_eigenvalue_map
        with use_backend("ref"), use_metrics(registry):
            min_eigenvalue_map(*args)
        assert registry.kernel_work["tracking.min_eigenvalue"].calls == 1

    def test_annotator_receives_flops(self):
        class Annotator:
            def __init__(self):
                self.attrs = {}

            def annotate_current(self, **attrs):
                for key, value in attrs.items():
                    self.attrs[key] = self.attrs.get(key, 0.0) + value

        spec = get_kernel("disparity.ssd")
        _, args = cases_for(spec, InputSize.SQCIF, 0)[0]
        annotator = Annotator()
        from repro.disparity.algorithm import ssd_map
        with use_metrics(MetricsRegistry(), annotator):
            ssd_map(*args)
            ssd_map(*args)
        expected = spec.work(*args)
        assert annotator.attrs["flops"] == 2 * expected.flops
        assert annotator.attrs["traffic_bytes"] == 2 * expected.traffic_bytes


class TestAllKernelWorkModels:
    def test_every_registered_kernel_has_a_work_model(self):
        for spec in registered_kernels():
            assert spec.work is not None, \
                f"kernel {spec.name} lacks a work model"

    @pytest.mark.parametrize(
        "spec", registered_kernels(), ids=lambda s: s.name)
    def test_analytic_work_nonzero(self, spec):
        estimate = analytic_work(spec, InputSize.SQCIF)
        assert estimate is not None
        assert estimate.flops > 0
        assert estimate.traffic_bytes > 0
        assert estimate.arithmetic_intensity > 0

    @pytest.mark.parametrize(
        "spec", registered_kernels(), ids=lambda s: s.name)
    def test_dispatch_records_nonzero_work(self, spec):
        """Acceptance: all registered kernels report nonzero work when
        actually executed through the dispatch layer."""
        import importlib

        _, args = cases_for(spec, InputSize.SQCIF, 0)[0]
        registry = MetricsRegistry()
        impl = spec.fast if spec.fast is not None else spec.ref
        with use_metrics(registry):
            impl(*args)  # direct impl bypasses dispatch...
        assert spec.name not in registry.kernel_work  # ...by design
        module = importlib.import_module(spec.module)
        dispatch = getattr(module, impl.__name__)
        assert dispatch.kernel_spec is spec
        with use_metrics(registry):
            dispatch(*args)
        work = registry.kernel_work[spec.name]
        assert work.flops > 0
        assert work.traffic_bytes > 0
        assert work.arithmetic_intensity > 0

    def test_image_kernels_scale_with_pixels(self):
        spec = get_kernel("imgproc.gradient")
        small = analytic_work(spec, InputSize.SQCIF)
        large = analytic_work(spec, InputSize.CIF)
        ratio = InputSize.CIF.pixels / InputSize.SQCIF.pixels
        assert large.flops / small.flops == pytest.approx(ratio)

    def test_work_model_table_covers_all_kernels(self):
        rows = work_model_table(InputSize.SQCIF)
        assert len(rows) == len(registered_kernels())
        names = [name for name, _ in rows]
        assert names == sorted(names)

    def test_convolution_model_matches_hand_count(self):
        import numpy as np
        from repro.imgproc.convolution import _work_convolve

        image = np.zeros((10, 20))
        kernel = np.zeros(5)
        est = _work_convolve(image, kernel)
        assert est.flops == 2.0 * 5 * 200
        assert est.traffic_bytes == FLOAT_BYTES * (2.0 * 200 + 5)


class TestRunnerIntegration:
    def test_run_benchmark_attaches_metrics(self):
        from repro.core import run_benchmark
        from repro.core.registry import get_benchmark

        run = run_benchmark(get_benchmark("disparity"), InputSize.SQCIF)
        assert run.metrics is not None
        kernels = run.metrics["kernels"]
        assert kernels["disparity.ssd"]["flops"] > 0
        counters = run.metrics["counters"]
        assert counters["app/runs"] == 1.0
        assert any(key.startswith("kernel/") for key in counters)

    def test_warmup_runs_excluded_from_metrics(self):
        from repro.core import run_benchmark
        from repro.core.registry import get_benchmark

        once = run_benchmark(get_benchmark("disparity"), InputSize.SQCIF,
                             warmup=2, repeats=1)
        twice = run_benchmark(get_benchmark("disparity"), InputSize.SQCIF,
                              warmup=0, repeats=2)
        calls_once = once.metrics["kernels"]["disparity.ssd"]["calls"]
        calls_twice = twice.metrics["kernels"]["disparity.ssd"]["calls"]
        assert calls_twice == 2 * calls_once

    def test_trace_spans_carry_flop_annotations(self):
        from repro.core import run_benchmark
        from repro.core.registry import get_benchmark
        from repro.core.tracing import CATEGORY_KERNEL, TraceRecorder

        with TraceRecorder() as recorder:
            run_benchmark(get_benchmark("disparity"), InputSize.SQCIF,
                          recorder=recorder)
        annotated = [
            span for span in recorder.spans
            if span.category == CATEGORY_KERNEL and "flops" in span.attrs
        ]
        assert annotated
        assert all(span.attrs["flops"] > 0 for span in annotated)
        assert all(span.attrs["traffic_bytes"] > 0 for span in annotated)


class TestRenderWorkModels:
    def test_table_lists_every_kernel(self):
        from repro.core.report import render_work_models

        text = render_work_models(InputSize.SQCIF)
        for spec in registered_kernels():
            assert spec.name in text
        assert "FLOP/byte" in text

    def test_cli_table4_includes_work(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Work (ops)" in out
        assert "Kernel work models" in out
        assert "disparity.ssd" in out
