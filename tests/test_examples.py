"""Smoke tests: every example script runs cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    ("quickstart.py", [], "disparity error"),
    ("feature_tracking.py", [], "kernel breakdown"),
    ("panorama_stitch.py", [], "registration error"),
    ("texture_comparison.py", [], "Efros-Leung"),
    ("face_detection.py", [], "operating curve"),
    ("suite_report.py", ["disparity"], "Figure 2"),
]

SLOW_EXAMPLES = [
    ("robot_localization.py", [], "final error"),
    ("image_segmentation.py", [], "purity"),
]


def run_example(name, args):
    script = os.path.join(EXAMPLES_DIR, name)
    completed = subprocess.run(
        [sys.executable, script, *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    return completed


@pytest.mark.parametrize("name,args,marker", FAST_EXAMPLES,
                         ids=[e[0] for e in FAST_EXAMPLES])
def test_fast_example(name, args, marker):
    completed = run_example(name, args)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout


@pytest.mark.parametrize("name,args,marker", SLOW_EXAMPLES,
                         ids=[e[0] for e in SLOW_EXAMPLES])
def test_slow_example(name, args, marker):
    completed = run_example(name, args)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout
