"""Tests for the event-level observability layer (repro.core.tracing).

Covers the span model (nesting, exclusivity, ordering) with an injected
fake clock, the zero-overhead guarantees when no recorder is attached,
the Chrome trace / JSONL exporters and the run manifest, and the
end-to-end agreement between recorded spans and the aggregate profiler.
"""

import json

import pytest

from repro.core import InputSize, get_benchmark, run_benchmark, run_suite
from repro.core.profiler import KernelProfiler, NullProfiler
from repro.core.report import render_kernel_drilldown, render_top_spans
from repro.core.tracing import (
    CATEGORY_APP,
    CATEGORY_KERNEL,
    NullRecorder,
    TraceRecorder,
    TraceSpan,
    chrome_trace_dict,
    ensure_recorder,
    events_from_jsonl,
    events_to_jsonl,
    run_manifest,
)


class FakeClock:
    """Deterministic clock: each call returns the current scripted time."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def traced_profiler():
    clock = FakeClock()
    recorder = TraceRecorder()
    profiler = KernelProfiler(clock=clock, recorder=recorder)
    return clock, recorder, profiler


class TestSpanModel:
    def test_kernel_call_emits_one_span(self):
        clock, recorder, profiler = traced_profiler()
        with profiler.kernel("A"):
            clock.advance(3.0)
        (span,) = recorder.spans
        assert span.name == "A"
        assert span.category == CATEGORY_KERNEL
        assert span.start == pytest.approx(0.0)
        assert span.duration == pytest.approx(3.0)
        assert span.self_duration == pytest.approx(3.0)
        assert span.depth == 0
        assert span.parent is None

    def test_nested_spans_record_depth_parent_and_exclusivity(self):
        clock, recorder, profiler = traced_profiler()
        with profiler.kernel("outer"):
            clock.advance(1.0)
            with profiler.kernel("inner"):
                clock.advance(2.0)
            clock.advance(0.5)
        outer = next(s for s in recorder.spans if s.name == "outer")
        inner = next(s for s in recorder.spans if s.name == "inner")
        assert inner.depth == 1
        assert inner.parent == outer.seq
        assert outer.duration == pytest.approx(3.5)
        # Child time is subtracted from the parent's exclusive share.
        assert outer.self_duration == pytest.approx(1.5)
        assert inner.self_duration == pytest.approx(2.0)

    def test_same_kernel_at_multiple_depths_yields_distinct_spans(self):
        clock, recorder, profiler = traced_profiler()
        with profiler.kernel("A"):
            clock.advance(1.0)
            with profiler.kernel("A"):
                clock.advance(2.0)
        spans = [s for s in recorder.spans if s.name == "A"]
        assert len(spans) == 2
        assert {s.depth for s in spans} == {0, 1}
        assert len({s.seq for s in spans}) == 2
        # Re-entrant nesting never double-counts exclusive time.
        assert sum(s.self_duration for s in spans) == pytest.approx(3.0)
        assert sum(s.self_duration for s in spans) == \
            pytest.approx(profiler.kernel_seconds["A"])

    def test_app_span_wraps_the_run(self):
        clock, recorder, profiler = traced_profiler()
        with profiler.run():
            with profiler.kernel("A"):
                clock.advance(1.0)
            clock.advance(0.5)
        app = next(s for s in recorder.spans if s.category == CATEGORY_APP)
        assert app.duration == pytest.approx(1.5)
        # App exclusive time is the profiler's non-kernel work.
        assert app.self_duration == pytest.approx(0.5)
        kernel = next(s for s in recorder.spans if s.name == "A")
        assert kernel.parent == app.seq
        assert kernel.depth == 1

    def test_sequence_numbers_follow_start_order(self):
        clock, recorder, profiler = traced_profiler()
        with profiler.kernel("first"):
            clock.advance(1.0)
            with profiler.kernel("second"):
                clock.advance(1.0)
        with profiler.kernel("third"):
            clock.advance(1.0)
        names = [s.name for s in recorder.spans]
        assert names == ["first", "second", "third"]
        seqs = [s.seq for s in recorder.spans]
        assert seqs == sorted(seqs)
        starts = [s.start for s in recorder.spans]
        assert starts == sorted(starts)

    def test_context_is_stamped_onto_spans(self):
        clock, recorder, profiler = traced_profiler()
        recorder.set_context(benchmark="demo", size="SQCIF", variant=0,
                             repeat=1, phase="measure", skipme=None)
        with profiler.kernel("A"):
            clock.advance(1.0)
        (span,) = recorder.spans
        assert span.attrs["benchmark"] == "demo"
        assert span.attrs["phase"] == "measure"
        assert "skipme" not in span.attrs

    def test_mismatched_close_raises(self):
        recorder = TraceRecorder()
        recorder.span_open("a", CATEGORY_KERNEL, 0.0)
        with pytest.raises(RuntimeError):
            recorder.span_close(99, 1.0)

    def test_exception_inside_kernel_still_closes_span(self):
        clock, recorder, profiler = traced_profiler()
        with pytest.raises(ValueError):
            with profiler.kernel("A"):
                clock.advance(1.0)
                raise ValueError("boom")
        (span,) = recorder.spans
        assert span.duration == pytest.approx(1.0)


class TestZeroOverhead:
    def test_profiler_without_recorder_emits_nothing(self):
        """The default hot path never touches tracing machinery."""
        profiler = KernelProfiler(clock=FakeClock())
        assert profiler.recorder is None
        with profiler.run():
            with profiler.kernel("A"):
                pass

    def test_null_profiler_emits_zero_events(self):
        recorder = TraceRecorder()
        profiler = NullProfiler(recorder=recorder)
        with profiler.run():
            with profiler.kernel("A"):
                pass
        assert recorder.events == 0

    def test_null_recorder_drops_everything(self):
        recorder = NullRecorder()
        clock = FakeClock()
        profiler = KernelProfiler(clock=clock, recorder=recorder)
        with profiler.run():
            with profiler.kernel("A"):
                clock.advance(1.0)
        assert recorder.events == 0
        assert recorder.spans == []

    def test_run_benchmark_without_recorder_emits_zero_events(self, monkeypatch):
        """No span is opened anywhere on the default measurement path."""
        import repro.core.tracing as tracing

        def forbidden(self, *args, **kwargs):
            raise AssertionError("span emitted without a recorder attached")

        monkeypatch.setattr(tracing.TraceRecorder, "span_open", forbidden)
        run = run_benchmark(get_benchmark("disparity"), InputSize.SQCIF)
        assert run.total_seconds > 0

    def test_ensure_recorder(self):
        assert isinstance(ensure_recorder(None), NullRecorder)
        real = TraceRecorder()
        assert ensure_recorder(real) is real


class TestRunnerIntegration:
    def test_span_self_durations_match_kernel_seconds(self):
        recorder = TraceRecorder()
        run = run_benchmark(get_benchmark("disparity"), InputSize.SQCIF,
                            recorder=recorder)
        sums = recorder.kernel_self_seconds()
        assert set(sums) == set(run.kernel_seconds)
        for name, seconds in run.kernel_seconds.items():
            assert sums[name] == pytest.approx(seconds, abs=1e-12)

    def test_warmup_and_repeats_are_tagged(self):
        recorder = TraceRecorder()
        run_benchmark(get_benchmark("disparity"), InputSize.SQCIF,
                      warmup=1, repeats=2, recorder=recorder)
        apps = [s for s in recorder.spans if s.category == CATEGORY_APP]
        assert len(apps) == 3
        phases = [(s.attrs["phase"], s.attrs["repeat"]) for s in apps]
        assert phases == [("warmup", 0), ("measure", 0), ("measure", 1)]

    def test_run_suite_serial_traces_every_cell(self):
        recorder = TraceRecorder()
        result = run_suite(["disparity"], sizes=[InputSize.SQCIF],
                           variants=[0], recorder=recorder)
        assert result.runs[0].total_seconds > 0
        sizes = {s.attrs.get("size") for s in recorder.spans}
        assert sizes == {"SQCIF"}
        assert recorder.events > 0

    def test_run_suite_parallel_serializes_events_back(self):
        recorder = TraceRecorder()
        result = run_suite(["disparity"],
                           sizes=[InputSize.SQCIF, InputSize.QCIF],
                           variants=[0], jobs=2, recorder=recorder)
        assert len(result.runs) == 2
        assert recorder.events > 0
        # One lane per grid cell; seqs re-based without collisions.
        tracks = {s.track for s in recorder.spans}
        seqs = [s.seq for s in recorder.spans]
        assert len(tracks) == 2
        assert len(seqs) == len(set(seqs))
        # Parent links survive the re-basing: every kernel span's parent
        # exists and sits on the same track.
        by_seq = {s.seq: s for s in recorder.spans}
        for span in recorder.spans:
            if span.parent is not None:
                assert by_seq[span.parent].track == span.track


class TestSerialization:
    def sample_spans(self):
        clock, recorder, profiler = traced_profiler()
        recorder.set_context(benchmark="demo", size="SQCIF")
        with profiler.run():
            with profiler.kernel("A"):
                clock.advance(1.0)
                with profiler.kernel("B"):
                    clock.advance(0.5)
        return recorder.spans

    def test_span_dict_roundtrip(self):
        for span in self.sample_spans():
            assert TraceSpan.from_dict(span.to_dict()) == span

    def test_jsonl_roundtrip_preserves_spans_and_order(self):
        spans = self.sample_spans()
        manifest = run_manifest(argv=["trace", "demo"])
        text = events_to_jsonl(spans, manifest)
        restored_manifest, restored = events_from_jsonl(text)
        assert restored == spans
        assert [s.seq for s in restored] == sorted(s.seq for s in restored)
        assert restored_manifest["argv"] == ["trace", "demo"]

    def test_jsonl_header_line_is_manifest(self):
        text = events_to_jsonl(self.sample_spans())
        first = json.loads(text.splitlines()[0])
        assert first["type"] == "manifest"
        assert first["schema"] == "sdvbs-repro/trace-events/v1"

    def test_jsonl_strict_rejects_unknown_event_type(self):
        with pytest.raises(ValueError):
            events_from_jsonl('{"type": "mystery"}\n', strict=True)

    def test_jsonl_lenient_skips_malformed_lines_with_warning(self):
        spans = self.sample_spans()
        good = events_to_jsonl(spans)
        # Simulate a crashed writer: unknown type, bad JSON, truncated tail.
        corrupted = (
            '{"type": "mystery"}\n'
            + good
            + "not json at all\n"
            + '{"type": "span", "seq": 99'
        )
        with pytest.warns(RuntimeWarning, match="3 malformed"):
            manifest, restored = events_from_jsonl(corrupted)
        assert restored == spans
        assert manifest is not None

    def test_jsonl_strict_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            events_from_jsonl(
                '{"type": "manifest", "manifest": {}}\nnot json\n',
                strict=True,
            )

    def test_absorb_rebases_seq_and_parent(self):
        spans = self.sample_spans()
        parent = TraceRecorder()
        parent.span_open("local", CATEGORY_KERNEL, 0.0)
        parent.span_close(0, 1.0)
        parent.absorb([s.to_dict() for s in spans])
        merged = parent.spans
        assert len(merged) == len(spans) + 1
        seqs = [s.seq for s in merged]
        assert len(seqs) == len(set(seqs))
        absorbed_b = next(s for s in merged if s.name == "B")
        absorbed_a = next(s for s in merged if s.name == "A")
        assert absorbed_b.parent == absorbed_a.seq
        assert absorbed_a.track == absorbed_b.track == 1


class TestChromeExport:
    def test_chrome_shape(self):
        clock, recorder, profiler = traced_profiler()
        with profiler.run():
            with profiler.kernel("A"):
                clock.advance(0.002)
        payload = chrome_trace_dict(recorder.spans,
                                    run_manifest(argv=["trace"]))
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
                assert key in event, key
        kernel = next(e for e in events if e["name"] == "A")
        assert kernel["dur"] == pytest.approx(2000.0)  # microseconds
        assert payload["metadata"]["schema"] == "sdvbs-repro/manifest/v1"
        assert payload["displayTimeUnit"] == "ms"

    def test_chrome_events_in_start_order(self):
        clock, recorder, profiler = traced_profiler()
        for name in ("a", "b", "c"):
            with profiler.kernel(name):
                clock.advance(1.0)
        events = chrome_trace_dict(recorder.spans)["traceEvents"]
        assert [e["name"] for e in events] == ["a", "b", "c"]
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)


class TestMemoryTracking:
    def test_peak_memory_sampled_per_span(self):
        recorder = TraceRecorder(track_memory=True)
        profiler = KernelProfiler(recorder=recorder)
        try:
            with profiler.kernel("alloc"):
                block = bytearray(512 * 1024)
                del block
        finally:
            recorder.finish()
        (span,) = recorder.spans
        assert span.attrs["memory_peak_bytes"] >= 512 * 1024

    def test_finish_is_idempotent(self):
        recorder = TraceRecorder(track_memory=True)
        profiler = KernelProfiler(recorder=recorder)
        with profiler.kernel("a"):
            pass
        recorder.finish()
        recorder.finish()


class TestManifest:
    def test_manifest_fields(self):
        manifest = run_manifest(argv=["run", "--jobs", "2"],
                                warmup=1, repeats=3, jobs=2)
        assert manifest["schema"] == "sdvbs-repro/manifest/v1"
        assert manifest["argv"] == ["run", "--jobs", "2"]
        assert manifest["measurement"] == {"warmup": 1, "repeats": 3,
                                           "jobs": 2, "backend": "fast"}
        assert "Operating System" in manifest["host"]
        assert manifest["python"]
        assert manifest["numpy"]


class TestTraceReports:
    def test_top_spans_and_drilldown_render(self):
        clock, recorder, profiler = traced_profiler()
        recorder.set_context(benchmark="demo", size="CIF", variant=1,
                             repeat=0, phase="measure")
        with profiler.run():
            for duration in (3.0, 1.0, 2.0):
                with profiler.kernel("K"):
                    clock.advance(duration)
        top = render_top_spans(recorder.spans, limit=2)
        assert "Top 2 slowest kernel invocations" in top
        assert "demo@CIF v1 r0" in top
        assert "3000.000 ms" in top
        drill = render_kernel_drilldown(recorder.spans)
        assert "K" in drill
        assert "| 3" in drill  # three calls
        assert "6000.000 ms" in drill  # total self


class TestCli:
    def test_trace_command_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "trace.json"
        events = tmp_path / "events.jsonl"
        assert cli_main(["trace", "disparity", "--size", "sqcif",
                         "--out", str(out), "--events", str(events)]) == 0
        payload = json.loads(out.read_text())
        assert payload["metadata"]["argv"][0] == "trace"
        kernel_events = [e for e in payload["traceEvents"]
                         if e["cat"] == "kernel"]
        assert kernel_events
        manifest, spans = events_from_jsonl(events.read_text())
        assert manifest["schema"] == "sdvbs-repro/manifest/v1"
        assert len(spans) == len(payload["traceEvents"])
        stdout = capsys.readouterr().out
        assert "slowest kernel invocations" in stdout
        assert "Per-kernel invocation drilldown" in stdout

    def test_trace_command_rejects_unknown_slug(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["trace", "nosuch",
                         "--out", str(tmp_path / "t.json")]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_sysinfo_command(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["sysinfo"]) == 0
        out = capsys.readouterr().out
        assert "Operating System" in out
        assert "Python" in out

    def test_run_events_flag_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        events = tmp_path / "events.jsonl"
        assert cli_main(["run", "disparity", "--sizes", "sqcif",
                         "--events", str(events), "--json"]) == 0
        manifest, spans = events_from_jsonl(events.read_text())
        assert spans
        assert manifest["argv"][0] == "run"
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "sdvbs-repro/suite-result/v8"
        assert payload["manifest"]["measurement"]["repeats"] == 1
