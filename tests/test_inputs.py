"""Unit tests for the synthetic input generators."""

import numpy as np
import pytest

from repro.core.inputs import (
    FACE_PATCH,
    all_variants,
    face_scene,
    face_training_set,
    image,
    overlapping_pair,
    rng_for,
    robot_world,
    segmentation_image,
    sequence,
    stereo_pair,
    svm_dataset,
    texture_sample,
)
from repro.core.types import VARIANTS_PER_SIZE, InputSize

SIZES = list(InputSize)


class TestDeterminism:
    def test_rng_stable_across_calls(self):
        a = rng_for(InputSize.SQCIF, 0, "x").random(5)
        b = rng_for(InputSize.SQCIF, 0, "x").random(5)
        assert np.array_equal(a, b)

    def test_rng_differs_by_variant_and_salt(self):
        base = rng_for(InputSize.SQCIF, 0, "x").random(5)
        other_variant = rng_for(InputSize.SQCIF, 1, "x").random(5)
        other_salt = rng_for(InputSize.SQCIF, 0, "y").random(5)
        assert not np.array_equal(base, other_variant)
        assert not np.array_equal(base, other_salt)

    def test_variant_out_of_range(self):
        with pytest.raises(ValueError):
            rng_for(InputSize.SQCIF, VARIANTS_PER_SIZE, "x")

    def test_images_reproducible(self):
        assert np.array_equal(
            image(InputSize.QCIF, 2), image(InputSize.QCIF, 2)
        )

    def test_all_variants(self):
        assert all_variants(InputSize.CIF) == [0, 1, 2, 3, 4]


class TestImage:
    @pytest.mark.parametrize("size", SIZES)
    def test_shape_and_range(self, size):
        img = image(size, 0)
        assert img.shape == size.shape
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_has_contrast(self):
        assert image(InputSize.SQCIF, 0).std() > 0.05

    def test_variants_differ(self):
        assert not np.array_equal(
            image(InputSize.SQCIF, 0), image(InputSize.SQCIF, 1)
        )


class TestStereo:
    def test_disparity_band_structure(self):
        pair = stereo_pair(InputSize.SQCIF, 0)
        assert pair.true_disparity.min() >= 0
        assert pair.true_disparity.max() < pair.max_disparity
        # Constant disparity along each row.
        assert (pair.true_disparity == pair.true_disparity[:, :1]).all()

    def test_right_is_shifted_left_image(self):
        pair = stereo_pair(InputSize.SQCIF, 1)
        row = 5
        d = int(pair.true_disparity[row, 0])
        # Interior pixels should correspond up to the added noise.
        left_segment = pair.left[row, d + 2 : -2]
        right_segment = pair.right[row, 2 : -d - 2] if d > 0 else \
            pair.right[row, 2:-2]
        assert np.abs(
            left_segment[: right_segment.size] - right_segment
        ).mean() < 0.05


class TestSequence:
    def test_frames_share_shape(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=3)
        assert len(seq.frames) == 3
        assert all(f.shape == InputSize.SQCIF.shape for f in seq.frames)

    def test_motion_is_apparent_shift(self):
        seq = sequence(InputSize.SQCIF, 0, n_frames=2)
        dy, dx = seq.true_motion
        assert dy <= -1 and dx <= -1  # window slides forward
        # Shifting frame 1 by the claimed motion should recover frame 0
        # in the overlap region.
        f0, f1 = seq.frames
        idy, idx = int(-dy), int(-dx)
        overlap0 = f0[idy:, idx:]
        overlap1 = f1[: overlap0.shape[0], : overlap0.shape[1]]
        assert np.abs(overlap0 - overlap1).mean() < 1e-12


class TestSegmentationImage:
    def test_labels_and_contrast(self):
        img, labels = segmentation_image(InputSize.SQCIF, 0, n_regions=4)
        assert img.shape == labels.shape == InputSize.SQCIF.shape
        assert set(np.unique(labels)) <= set(range(4))
        # Regions should have distinct mean intensities.
        means = [img[labels == k].mean() for k in np.unique(labels)]
        assert max(means) - min(means) > 0.2


class TestOverlappingPair:
    def test_overlap_region_matches(self):
        pair = overlapping_pair(InputSize.SQCIF, 0)
        dy, dx = pair.true_offset
        rows, cols = pair.first.shape
        a = pair.first[dy:, dx:]
        b = pair.second[: rows - dy, : cols - dx]
        assert np.abs(a - b).max() < 1e-12


class TestFaceInputs:
    def test_training_set_shapes(self):
        patches, labels = face_training_set(0, n_pos=20, n_neg=30)
        assert patches.shape == (50, FACE_PATCH, FACE_PATCH)
        assert labels.sum() == 20
        assert patches.min() >= 0.0 and patches.max() <= 1.0

    def test_faces_darker_eyes(self):
        patches, labels = face_training_set(0, n_pos=10, n_neg=5)
        face = patches[0]
        eye_band = face[4:7, :].mean()
        cheek_band = face[8:11, :].mean()
        assert eye_band < cheek_band

    def test_scene_boxes_inside(self):
        scene = face_scene(InputSize.QCIF, 0, n_faces=3)
        rows, cols = scene.image.shape
        assert len(scene.true_boxes) == 3
        for r, c, side in scene.true_boxes:
            assert 0 <= r and r + side <= rows
            assert 0 <= c and c + side <= cols
            assert side >= FACE_PATCH


class TestRobotWorld:
    def test_trace_lengths(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=10)
        assert len(world.controls) == 10
        assert len(world.true_poses) == 10
        assert len(world.measurements) == 10
        assert world.measurements[0].shape == (world.n_beams,)

    def test_poses_stay_in_free_space(self):
        world = robot_world(InputSize.SQCIF, 1, n_steps=15)
        for x, y, _theta in world.true_poses:
            assert 0 <= x < world.grid.shape[1]
            assert 0 <= y < world.grid.shape[0]
            assert world.grid[int(y), int(x)] == 0

    def test_walls_present(self):
        world = robot_world(InputSize.SQCIF, 0)
        assert world.grid[0].all() and world.grid[-1].all()
        assert world.grid[:, 0].all() and world.grid[:, -1].all()

    def test_measurements_within_range(self):
        world = robot_world(InputSize.SQCIF, 2, n_steps=5)
        for ranges in world.measurements:
            assert (ranges >= 0).all()
            assert (ranges <= world.max_range).all()


class TestSvmDataset:
    def test_shapes_scale_with_size(self):
        small = svm_dataset(InputSize.SQCIF, 0)
        large = svm_dataset(InputSize.CIF, 0)
        assert small.train_x.shape[0] < large.train_x.shape[0]
        assert set(np.unique(small.train_y)) == {-1.0, 1.0}

    def test_classes_separated(self):
        data = svm_dataset(InputSize.SQCIF, 0, margin=1.2)
        pos = data.train_x[data.train_y > 0].mean(axis=0)
        neg = data.train_x[data.train_y < 0].mean(axis=0)
        assert np.linalg.norm(pos - neg) > 1.0


class TestTexture:
    @pytest.mark.parametrize("kind", ["stochastic", "structural"])
    def test_range_and_shape(self, kind):
        tex = texture_sample(InputSize.SQCIF, 0, kind)
        assert tex.min() >= 0.0 and tex.max() <= 1.0
        assert min(tex.shape) >= 32

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            texture_sample(InputSize.SQCIF, 0, "fractal")

    def test_structural_is_periodic(self):
        tex = texture_sample(InputSize.SQCIF, 0, "structural")
        # variant 0 has period 6; the checker component flips sign at one
        # period, so the full pattern repeats at two periods.
        shifted = np.roll(tex, 12, axis=1)
        # Periodic structure: correlation with the shifted copy is high.
        corr = np.corrcoef(tex.ravel(), shifted.ravel())[0, 1]
        assert corr > 0.5
